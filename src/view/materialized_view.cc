#include "view/materialized_view.h"

#include "obs/trace.h"
#include "plan/executor.h"
#include "plan/planner.h"

namespace expdb {

ViewMetrics::ViewMetrics() {
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  recomputations.SetParent(r.GetCounter("expdb_view_recomputations_total"));
  reads.SetParent(r.GetCounter("expdb_view_reads_total"));
  reads_from_materialization.SetParent(
      r.GetCounter("expdb_view_reads_from_materialization_total"));
  reads_moved_backward.SetParent(
      r.GetCounter("expdb_view_reads_moved_backward_total"));
  reads_moved_forward.SetParent(
      r.GetCounter("expdb_view_reads_moved_forward_total"));
  patches_applied.SetParent(
      r.GetCounter("expdb_view_patches_applied_total"));
  tuples_recomputed.SetParent(
      r.GetCounter("expdb_view_tuples_recomputed_total"));
  marked_stale.SetParent(r.GetCounter("expdb_view_marked_stale_total"));
  pending_patches.SetParent(r.GetGauge("expdb_view_pending_patches"));
  materialized_tuples.SetParent(
      r.GetGauge("expdb_view_materialized_tuples"));
  recompute_latency.SetParent(
      r.GetHistogram("expdb_view_recompute_latency_ns"));
}

std::string_view RefreshModeToString(RefreshMode mode) {
  switch (mode) {
    case RefreshMode::kEagerRecompute:
      return "eager-recompute";
    case RefreshMode::kLazyRecompute:
      return "lazy-recompute";
    case RefreshMode::kSchrodinger:
      return "schrodinger";
    case RefreshMode::kPatchDifference:
      return "patch-difference";
  }
  return "?";
}

std::string_view MovePolicyToString(MovePolicy policy) {
  switch (policy) {
    case MovePolicy::kRecompute:
      return "recompute";
    case MovePolicy::kMoveBackward:
      return "move-backward";
    case MovePolicy::kMoveForward:
      return "move-forward";
  }
  return "?";
}

MaterializedView::MaterializedView(ExpressionPtr expr, Options options)
    : expr_(std::move(expr)), options_(options) {
  if (options_.mode == RefreshMode::kSchrodinger) {
    options_.eval.compute_validity = true;
  }
}

Status MaterializedView::Initialize(const Database& db, Timestamp now) {
  if (expr_ == nullptr) return Status::InvalidArgument("null expression");
  if (options_.mode == RefreshMode::kPatchDifference &&
      expr_->kind() != ExprKind::kDifference &&
      expr_->kind() != ExprKind::kAntiJoin) {
    return Status::InvalidArgument(
        "kPatchDifference requires a difference or anti-join root, got " +
        std::string(ExprKindToString(expr_->kind())));
  }
  last_advance_ = now;
  // Initialize is the first materialization, not a maintenance recompute:
  // it does not count toward the recomputation metrics.
  EXPDB_RETURN_NOT_OK(Recompute(db, now, /*count_as_maintenance=*/false));
  initialized_ = true;
  return Status::OK();
}

Status MaterializedView::EnsurePlan(const Database& db) {
  if (plan_ != nullptr) {
    // Cached-plan execution: planning (and the rewrite pass, when
    // enabled) is skipped entirely on recomputation.
    static obs::Counter* cache_hits =
        obs::MetricsRegistry::Global().GetCounter(
            "expdb_plan_cache_hits_total",
            "Executions served from a cached physical plan");
    cache_hits->Increment();
    return Status::OK();
  }
  plan::PlannerOptions popts;
  popts.apply_rewrites = options_.rewrite_plan;
  popts.eval = options_.eval;
  EXPDB_ASSIGN_OR_RETURN(plan_, plan::Planner::Plan(expr_, db, popts));
  return Status::OK();
}

Status MaterializedView::Recompute(const Database& db, Timestamp now,
                                   bool count_as_maintenance) {
  obs::ScopedSpan span(
      "view.recompute",
      count_as_maintenance ? &metrics_.recompute_latency : nullptr);
  EXPDB_RETURN_NOT_OK(EnsurePlan(db));
  if (options_.mode == RefreshMode::kPatchDifference) {
    EXPDB_ASSIGN_OR_RETURN(
        DifferenceEvalResult diff,
        plan::ExecutePlanDifferenceRoot(*plan_, db, now, options_.eval));
    result_ = std::move(diff.result);
    helper_ = std::move(diff.helper);
    patch_cursor_ = 0;
    // Patching neutralizes the root's own invalidations (Theorem 3): only
    // argument invalidations remain.
    result_.texp = diff.children_texp;
  } else {
    EXPDB_ASSIGN_OR_RETURN(
        result_, plan::ExecutePlan(*plan_, db, now, options_.eval));
  }
  if (count_as_maintenance) {
    metrics_.recomputations.Increment();
    metrics_.tuples_recomputed.Increment(result_.relation.size());
  }
  UpdateGauges();
  return Status::OK();
}

void MaterializedView::ApplyPatches(Timestamp now) {
  while (patch_cursor_ < helper_.size() &&
         helper_[patch_cursor_].appears_at <= now) {
    const DifferencePatchEntry& entry = helper_[patch_cursor_++];
    // Theorem 3: at texp_S(t) the helper tuple expires and is inserted
    // into the materialized difference with expiration texp_R(t). If it
    // is already past its own expiration, the insert would be invisible —
    // skip it.
    if (entry.expires_at > now) {
      result_.relation.InsertUnchecked(entry.tuple, entry.expires_at);
      metrics_.patches_applied.Increment();
    }
  }
  UpdateGauges();
}

void MaterializedView::UpdateGauges() {
  metrics_.pending_patches.Set(
      static_cast<int64_t>(helper_.size() - patch_cursor_));
  metrics_.materialized_tuples.Set(
      static_cast<int64_t>(result_.relation.size()));
}

Status MaterializedView::AdvanceTo(const Database& db, Timestamp now) {
  if (!initialized_) return Status::Internal("view not initialized");
  if (now < last_advance_) {
    return Status::InvalidArgument("view time cannot move backwards");
  }
  last_advance_ = now;
  if (stale_) {
    // An explicit base update invalidated the expiration-only contract;
    // rebuild from scratch (conservative but sound).
    EXPDB_RETURN_NOT_OK(Recompute(db, now));
    stale_ = false;
  }
  switch (options_.mode) {
    case RefreshMode::kEagerRecompute: {
      // Recompute at every invalidation instant. Each recomputation's
      // texp is strictly in its future, so this terminates.
      while (result_.texp <= now) {
        EXPDB_RETURN_NOT_OK(Recompute(db, result_.texp));
      }
      return Status::OK();
    }
    case RefreshMode::kLazyRecompute:
    case RefreshMode::kSchrodinger:
      // Deferred to Read().
      return Status::OK();
    case RefreshMode::kPatchDifference: {
      ApplyPatches(now);
      // Argument invalidation (only possible with non-monotonic
      // arguments) still forces a rebuild.
      while (result_.texp <= now) {
        EXPDB_RETURN_NOT_OK(Recompute(db, result_.texp));
        ApplyPatches(now);
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown refresh mode");
}

Result<Relation> MaterializedView::Read(const Database& db, Timestamp now,
                                        Timestamp* served_at) {
  if (!initialized_) return Status::Internal("view not initialized");
  const uint64_t recomputes_before = metrics_.recomputations.value();
  EXPDB_RETURN_NOT_OK(AdvanceTo(db, now));
  metrics_.reads.Increment();
  if (served_at != nullptr) *served_at = now;

  switch (options_.mode) {
    case RefreshMode::kEagerRecompute:
    case RefreshMode::kPatchDifference:
      // AdvanceTo already restored validity; count the read as served
      // from the materialization only if it did not have to recompute.
      if (metrics_.recomputations.value() == recomputes_before) {
        metrics_.reads_from_materialization.Increment();
      }
      return result_.relation.UnexpiredAt(now);

    case RefreshMode::kLazyRecompute:
      if (result_.texp <= now) {
        EXPDB_RETURN_NOT_OK(Recompute(db, now));
      } else {
        metrics_.reads_from_materialization.Increment();
      }
      return result_.relation.UnexpiredAt(now);

    case RefreshMode::kSchrodinger: {
      if (result_.validity.Contains(now)) {
        metrics_.reads_from_materialization.Increment();
        return result_.relation.UnexpiredAt(now);
      }
      switch (options_.move_policy) {
        case MovePolicy::kRecompute:
          EXPDB_RETURN_NOT_OK(Recompute(db, now));
          return result_.relation.UnexpiredAt(now);
        case MovePolicy::kMoveBackward: {
          auto t = result_.validity.LastValidBefore(now);
          if (!t.has_value()) {
            EXPDB_RETURN_NOT_OK(Recompute(db, now));
            return result_.relation.UnexpiredAt(now);
          }
          metrics_.reads_moved_backward.Increment();
          metrics_.reads_from_materialization.Increment();
          if (served_at != nullptr) *served_at = *t;
          return result_.relation.UnexpiredAt(*t);
        }
        case MovePolicy::kMoveForward: {
          auto t = result_.validity.FirstValidAtOrAfter(now);
          if (!t.has_value() || t->IsInfinite()) {
            EXPDB_RETURN_NOT_OK(Recompute(db, now));
            return result_.relation.UnexpiredAt(now);
          }
          metrics_.reads_moved_forward.Increment();
          metrics_.reads_from_materialization.Increment();
          if (served_at != nullptr) *served_at = *t;
          return result_.relation.UnexpiredAt(*t);
        }
      }
      return Status::Internal("unknown move policy");
    }
  }
  return Status::Internal("unknown refresh mode");
}

}  // namespace expdb
