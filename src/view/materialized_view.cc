#include "view/materialized_view.h"

#include "obs/log.h"
#include "obs/trace.h"
#include "plan/cache.h"
#include "plan/executor.h"
#include "plan/planner.h"

namespace expdb {

namespace {

/// Maintenance-decision event: which path this view took and how much
/// work it cost (docs/OBSERVABILITY.md "Event log").
void LogViewEvent(const std::string& view, const char* event,
                  std::vector<obs::LogField> extra = {}) {
  obs::EventLog& log = obs::EventLog::Global();
  if (!log.enabled()) return;
  std::vector<obs::LogField> fields;
  fields.reserve(extra.size() + 1);
  fields.emplace_back("view", view);
  for (auto& f : extra) fields.push_back(std::move(f));
  log.Emit(obs::LogSeverity::kInfo, "view", event, std::move(fields));
}

}  // namespace

ViewMetrics::ViewMetrics() {
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  recomputations.SetParent(r.GetCounter("expdb_view_recomputations_total"));
  reads.SetParent(r.GetCounter("expdb_view_reads_total"));
  reads_from_materialization.SetParent(
      r.GetCounter("expdb_view_reads_from_materialization_total"));
  reads_moved_backward.SetParent(
      r.GetCounter("expdb_view_reads_moved_backward_total"));
  reads_moved_forward.SetParent(
      r.GetCounter("expdb_view_reads_moved_forward_total"));
  patches_applied.SetParent(
      r.GetCounter("expdb_view_patches_applied_total"));
  tuples_recomputed.SetParent(
      r.GetCounter("expdb_view_tuples_recomputed_total"));
  marked_stale.SetParent(r.GetCounter("expdb_view_marked_stale_total"));
  delta_applies.SetParent(r.GetCounter("expdb_view_delta_applies_total"));
  delta_fallbacks.SetParent(
      r.GetCounter("expdb_view_delta_fallbacks_total"));
  delta_tuples.SetParent(r.GetCounter("expdb_view_delta_tuples_total"));
  replans.SetParent(r.GetCounter("expdb_view_replans_total"));
  pending_patches.SetParent(r.GetGauge("expdb_view_pending_patches"));
  materialized_tuples.SetParent(
      r.GetGauge("expdb_view_materialized_tuples"));
  recompute_latency.SetParent(
      r.GetHistogram("expdb_view_recompute_latency_ns"));
  delta_latency.SetParent(r.GetHistogram("expdb_view_delta_latency_ns"));
}

std::string_view RefreshModeToString(RefreshMode mode) {
  switch (mode) {
    case RefreshMode::kEagerRecompute:
      return "eager-recompute";
    case RefreshMode::kLazyRecompute:
      return "lazy-recompute";
    case RefreshMode::kSchrodinger:
      return "schrodinger";
    case RefreshMode::kPatchDifference:
      return "patch-difference";
  }
  return "?";
}

std::string_view MovePolicyToString(MovePolicy policy) {
  switch (policy) {
    case MovePolicy::kRecompute:
      return "recompute";
    case MovePolicy::kMoveBackward:
      return "move-backward";
    case MovePolicy::kMoveForward:
      return "move-forward";
  }
  return "?";
}

MaterializedView::MaterializedView(ExpressionPtr expr, Options options)
    : expr_(std::move(expr)), options_(options) {
  if (options_.mode == RefreshMode::kSchrodinger) {
    options_.eval.compute_validity = true;
  }
}

Status MaterializedView::Initialize(const Database& db, Timestamp now) {
  if (expr_ == nullptr) return Status::InvalidArgument("null expression");
  if (options_.mode == RefreshMode::kPatchDifference &&
      expr_->kind() != ExprKind::kDifference &&
      expr_->kind() != ExprKind::kAntiJoin) {
    return Status::InvalidArgument(
        "kPatchDifference requires a difference or anti-join root, got " +
        std::string(ExprKindToString(expr_->kind())));
  }
  last_advance_ = now;
  // Initialize is the first materialization, not a maintenance recompute:
  // it does not count toward the recomputation metrics.
  EXPDB_RETURN_NOT_OK(Recompute(db, now, /*count_as_maintenance=*/false));
  initialized_ = true;
  return Status::OK();
}

Status MaterializedView::EnsurePlan(const Database& db) {
  if (plan_ != nullptr) {
    // Cached-plan execution: planning (and the rewrite pass, when
    // enabled) is skipped entirely on recomputation.
    plan::PlanCacheHits()->Increment();
    return Status::OK();
  }
  plan::PlannerOptions popts;
  popts.apply_rewrites = options_.rewrite_plan;
  popts.eval = options_.eval;
  EXPDB_ASSIGN_OR_RETURN(plan_, plan::Planner::Plan(expr_, db, popts));
  // Snapshot the base cardinalities the estimates were derived from; the
  // MaybeReplan heuristic compares against them.
  plan_base_sizes_.clear();
  for (const std::string& name : expr_->BaseRelationNames()) {
    auto rel = db.GetRelation(name);
    if (rel.ok()) plan_base_sizes_[name] = rel.value()->size();
  }
  return Status::OK();
}

void MaterializedView::MaybeReplan(const Database& db) {
  if (plan_ == nullptr) return;
  for (const auto& [name, planned_size] : plan_base_sizes_) {
    auto rel = db.GetRelation(name);
    if (!rel.ok()) continue;
    const size_t size = rel.value()->size();
    if (size == planned_size) continue;
    const size_t lo = size < planned_size ? size : planned_size;
    const size_t hi = size < planned_size ? planned_size : size;
    // ≥2× drift (0 → anything counts): the estimates behind build-side
    // and parallelism choices are off enough to be worth re-deriving.
    if (hi >= 2 * lo) {
      plan_.reset();
      plan_base_sizes_.clear();
      propagator_.reset();
      base_cursors_.clear();
      metrics_.replans.Increment();
      LogViewEvent(name_, "replan",
                   {{"base", name},
                    {"planned_size", std::to_string(planned_size)},
                    {"current_size", std::to_string(size)}});
      return;
    }
  }
}

Status MaterializedView::Recompute(const Database& db, Timestamp now,
                                   bool count_as_maintenance) {
  obs::ScopedSpan span(
      "view.recompute",
      count_as_maintenance ? &metrics_.recompute_latency : nullptr);
  MaybeReplan(db);
  EXPDB_RETURN_NOT_OK(EnsurePlan(db));
  // The recompute invalidates any previously seeded incremental state;
  // capture the per-node materializations to reseed it when the plan is
  // incrementalizable.
  propagator_.reset();
  base_cursors_.clear();
  // Demand-driven: the capture + seeding cost is only paid once the view
  // has actually seen an explicit update (update_seen_); expiration-only
  // views recompute exactly as cheaply as before the delta engine.
  const bool want_delta =
      options_.incremental && update_seen_ &&
      plan::PlanSupportsDelta(*plan_, options_.eval);
  plan::NodeCapture capture;
  plan::NodeCapture* capture_ptr = want_delta ? &capture : nullptr;
  if (options_.mode == RefreshMode::kPatchDifference) {
    EXPDB_ASSIGN_OR_RETURN(DifferenceEvalResult diff,
                           plan::ExecutePlanDifferenceRoot(
                               *plan_, db, now, options_.eval,
                               /*profile=*/nullptr, capture_ptr));
    result_ = std::move(diff.result);
    helper_ = std::move(diff.helper);
    patch_cursor_ = 0;
    // Patching neutralizes the root's own invalidations (Theorem 3): only
    // argument invalidations remain.
    result_.texp = diff.children_texp;
  } else {
    EXPDB_ASSIGN_OR_RETURN(
        result_, plan::ExecutePlan(*plan_, db, now, options_.eval,
                                   /*profile=*/nullptr, capture_ptr));
  }
  if (want_delta) SeedPropagator(db, capture);
  if (count_as_maintenance) {
    metrics_.recomputations.Increment();
    metrics_.tuples_recomputed.Increment(result_.relation.size());
  }
  LogViewEvent(name_, "recompute",
               {{"tuples", std::to_string(result_.relation.size())},
                {"texp", result_.texp.ToString()},
                {"maintenance", count_as_maintenance ? "true" : "false"}});
  UpdateGauges();
  return Status::OK();
}

void MaterializedView::SeedPropagator(const Database& db,
                                      const plan::NodeCapture& capture) {
  propagator_ =
      plan::DeltaPropagator::Create(plan_, capture, options_.eval);
  if (propagator_ == nullptr) return;
  base_cursors_.clear();
  for (const std::string& name : expr_->BaseRelationNames()) {
    auto rel = db.GetRelation(name);
    if (!rel.ok()) {
      // A base the expression reads is missing; the next execution fails
      // anyway — stay on the full path.
      propagator_.reset();
      base_cursors_.clear();
      return;
    }
    // Turn on delta capture so future explicit mutations are recorded
    // (idempotent; metadata-only, hence allowed through const access).
    rel.value()->EnableDeltaTracking();
    base_cursors_[name] = rel.value()->delta_cursor();
  }
}

Result<bool> MaterializedView::TryApplyDeltas(const Database& db,
                                              Timestamp now) {
  if (propagator_ == nullptr) return false;
  // The propagator's cached analyses (aggregate partitions, difference
  // criticals) are only valid while the materialization is: a lapsed
  // texp(e) means recompute.
  if (result_.texp <= now) return false;
  std::vector<plan::BaseDelta> deltas;
  for (const auto& [name, cursor] : base_cursors_) {
    auto rel = db.GetRelation(name);
    if (!rel.ok()) return false;
    const Relation* base = rel.value();
    // An instance-id mismatch means a different body of data now lives
    // under the name (wholesale replacement, catalog churn): the stream
    // does not describe our seed state.
    if (base->delta_instance_id() == 0 ||
        base->delta_instance_id() != cursor.instance_id) {
      return false;
    }
    auto batches = base->DeltasSince(cursor.epoch);
    if (!batches.has_value()) return false;  // ring trimmed / history broken
    if (!batches->empty()) {
      deltas.push_back({name, std::move(*batches)});
    }
  }
  obs::ScopedSpan span("view.delta_apply", &metrics_.delta_latency);
  // Patch mode: bring the materialization up to date with the helper
  // queue first — the propagator models appeared criticals as present.
  if (options_.mode == RefreshMode::kPatchDifference) ApplyPatches(now);
  EXPDB_ASSIGN_OR_RETURN(plan::DeltaPropagator::ApplyResult applied,
                         propagator_->Apply(deltas, now));
  plan::DeltaPropagator::ApplyOps(applied.root_ops, &result_.relation);
  if (options_.mode == RefreshMode::kPatchDifference &&
      applied.root_is_difference) {
    helper_ = std::move(applied.helper);
    patch_cursor_ = 0;
    result_.texp = applied.children_texp;
  } else {
    result_.texp = applied.texp;
  }
  result_.materialized_at = now;
  result_.validity = IntervalSet(now, result_.texp);
  for (auto& [name, cursor] : base_cursors_) {
    auto rel = db.GetRelation(name);
    if (rel.ok()) cursor.epoch = rel.value()->delta_epoch();
  }
  metrics_.delta_applies.Increment();
  metrics_.delta_tuples.Increment(applied.ops_out);
  LogViewEvent(name_, "delta_apply",
               {{"tuples", std::to_string(applied.ops_out)},
                {"texp", result_.texp.ToString()}});
  UpdateGauges();
  return true;
}

void MaterializedView::ApplyPatches(Timestamp now) {
  while (patch_cursor_ < helper_.size() &&
         helper_[patch_cursor_].appears_at <= now) {
    const DifferencePatchEntry& entry = helper_[patch_cursor_++];
    // Theorem 3: at texp_S(t) the helper tuple expires and is inserted
    // into the materialized difference with expiration texp_R(t). If it
    // is already past its own expiration, the insert would be invisible —
    // skip it.
    if (entry.expires_at > now) {
      result_.relation.InsertUnchecked(entry.tuple, entry.expires_at);
      metrics_.patches_applied.Increment();
    }
  }
  UpdateGauges();
}

void MaterializedView::UpdateGauges() {
  metrics_.pending_patches.Set(
      static_cast<int64_t>(helper_.size() - patch_cursor_));
  metrics_.materialized_tuples.Set(
      static_cast<int64_t>(result_.relation.size()));
}

Status MaterializedView::AdvanceTo(const Database& db, Timestamp now) {
  if (!initialized_) return Status::Internal("view not initialized");
  if (now < last_advance_) {
    return Status::InvalidArgument("view time cannot move backwards");
  }
  last_advance_ = now;
  if (stale_) {
    // An explicit base update invalidated the expiration-only contract.
    // Preferred path: pull the recorded base deltas and push them through
    // the cached plan — O(|delta|). Anything the incremental machinery
    // cannot prove falls back to the full rebuild (sound by
    // construction).
    // If a base cardinality drifted ≥2× from its plan-time snapshot the
    // plan's performance annotations are stale: drop it (which also
    // drops the propagator) and let the recompute below re-derive both.
    MaybeReplan(db);
    bool applied = false;
    if (options_.incremental) {
      auto incremental = TryApplyDeltas(db, now);
      if (incremental.ok()) {
        applied = incremental.value();
      } else {
        // The propagator's state may be mid-update; discard it. The
        // recompute below reseeds.
        propagator_.reset();
        base_cursors_.clear();
      }
    }
    if (!applied) {
      metrics_.delta_fallbacks.Increment();
      LogViewEvent(name_, "delta_fallback",
                   {{"texp", result_.texp.ToString()}});
      EXPDB_RETURN_NOT_OK(Recompute(db, now));
    }
    stale_ = false;
  }
  switch (options_.mode) {
    case RefreshMode::kEagerRecompute: {
      // Recompute at every invalidation instant. Each recomputation's
      // texp is strictly in its future, so this terminates.
      while (result_.texp <= now) {
        EXPDB_RETURN_NOT_OK(Recompute(db, result_.texp));
      }
      return Status::OK();
    }
    case RefreshMode::kLazyRecompute:
    case RefreshMode::kSchrodinger:
      // Deferred to Read().
      return Status::OK();
    case RefreshMode::kPatchDifference: {
      ApplyPatches(now);
      // Argument invalidation (only possible with non-monotonic
      // arguments) still forces a rebuild.
      while (result_.texp <= now) {
        EXPDB_RETURN_NOT_OK(Recompute(db, result_.texp));
        ApplyPatches(now);
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown refresh mode");
}

Result<Relation> MaterializedView::Read(const Database& db, Timestamp now,
                                        Timestamp* served_at) {
  if (!initialized_) return Status::Internal("view not initialized");
  const uint64_t recomputes_before = metrics_.recomputations.value();
  EXPDB_RETURN_NOT_OK(AdvanceTo(db, now));
  metrics_.reads.Increment();
  if (served_at != nullptr) *served_at = now;

  switch (options_.mode) {
    case RefreshMode::kEagerRecompute:
    case RefreshMode::kPatchDifference:
      // AdvanceTo already restored validity; count the read as served
      // from the materialization only if it did not have to recompute.
      if (metrics_.recomputations.value() == recomputes_before) {
        metrics_.reads_from_materialization.Increment();
      }
      return result_.relation.UnexpiredAt(now);

    case RefreshMode::kLazyRecompute:
      if (result_.texp <= now) {
        EXPDB_RETURN_NOT_OK(Recompute(db, now));
      } else {
        metrics_.reads_from_materialization.Increment();
      }
      return result_.relation.UnexpiredAt(now);

    case RefreshMode::kSchrodinger: {
      if (result_.validity.Contains(now)) {
        metrics_.reads_from_materialization.Increment();
        return result_.relation.UnexpiredAt(now);
      }
      switch (options_.move_policy) {
        case MovePolicy::kRecompute:
          EXPDB_RETURN_NOT_OK(Recompute(db, now));
          return result_.relation.UnexpiredAt(now);
        case MovePolicy::kMoveBackward: {
          auto t = result_.validity.LastValidBefore(now);
          if (!t.has_value()) {
            EXPDB_RETURN_NOT_OK(Recompute(db, now));
            return result_.relation.UnexpiredAt(now);
          }
          metrics_.reads_moved_backward.Increment();
          metrics_.reads_from_materialization.Increment();
          if (served_at != nullptr) *served_at = *t;
          return result_.relation.UnexpiredAt(*t);
        }
        case MovePolicy::kMoveForward: {
          auto t = result_.validity.FirstValidAtOrAfter(now);
          if (!t.has_value() || t->IsInfinite()) {
            EXPDB_RETURN_NOT_OK(Recompute(db, now));
            return result_.relation.UnexpiredAt(now);
          }
          metrics_.reads_moved_forward.Increment();
          metrics_.reads_from_materialization.Increment();
          if (served_at != nullptr) *served_at = *t;
          return result_.relation.UnexpiredAt(*t);
        }
      }
      return Status::Internal("unknown move policy");
    }
  }
  return Status::Internal("unknown refresh mode");
}

}  // namespace expdb
