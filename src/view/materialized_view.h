// MaterializedView: a query result maintained independently of, but in
// synchrony with, its base relations (paper Sec. 1, 3).
//
// The central idea of the paper: once a result is computed, its tuples
// expire in place using only their own expiration times. For monotonic
// expressions this is always exact (Theorem 1) and the view NEVER needs
// recomputation. Non-monotonic expressions carry a finite texp(e); what
// happens when it passes is the refresh policy:
//
//  * kEagerRecompute — recompute at every invalidation instant as time
//    advances (Sec. 3.1 "recompute the expression once it becomes
//    invalid").
//  * kLazyRecompute  — serve from the materialization while valid;
//    recompute only when a read arrives after texp(e).
//  * kSchrodinger    — keep exact validity intervals (Sec. 3.3–3.4);
//    reads inside a valid interval are served directly, reads in a gap
//    are recomputed or moved backward/forward in time per MovePolicy.
//  * kPatchDifference — for views whose root is −exp: maintain the
//    Theorem 3 helper priority queue and patch expiring helper tuples
//    into the result, making the view maintenance-free (texp = ∞ when the
//    arguments are monotonic).

#ifndef EXPDB_VIEW_MATERIALIZED_VIEW_H_
#define EXPDB_VIEW_MATERIALIZED_VIEW_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/eval.h"
#include "core/expression.h"
#include "core/materialized_result.h"
#include "obs/metrics.h"
#include "plan/delta.h"
#include "plan/plan.h"

namespace expdb {

/// Refresh policy of a materialized view.
enum class RefreshMode {
  kEagerRecompute,
  kLazyRecompute,
  kSchrodinger,
  kPatchDifference,
};

std::string_view RefreshModeToString(RefreshMode mode);

/// What to do when a Schrödinger-mode read falls into a validity gap
/// (Sec. 3.3: recomputation, moving the query backward — "returning a
/// slightly outdated result" — or forward — "delaying the query").
enum class MovePolicy { kRecompute, kMoveBackward, kMoveForward };

std::string_view MovePolicyToString(MovePolicy policy);

/// Maintenance counters; the currency of the paper's cost arguments.
/// Since the obs refactor this is a *thin read view* assembled from the
/// view's ViewMetrics — the metric objects are the single source of truth
/// and also feed the process-wide obs::MetricsRegistry.
struct ViewStats {
  uint64_t recomputations = 0;       ///< full re-evaluations of the tree
  uint64_t reads = 0;                ///< Read() calls served
  uint64_t reads_from_materialization = 0;  ///< served without recompute
  uint64_t reads_moved_backward = 0;        ///< Schrödinger: outdated reads
  uint64_t reads_moved_forward = 0;         ///< Schrödinger: delayed reads
  uint64_t patches_applied = 0;      ///< Theorem 3 helper insertions
  uint64_t tuples_recomputed = 0;    ///< tuples produced by recomputations
  uint64_t delta_applies = 0;        ///< incremental maintenance rounds
  uint64_t delta_fallbacks = 0;      ///< stale updates that had to recompute
};

/// Instance-local (per-view) metric handles. Counters/histograms
/// aggregate into the process-wide `expdb_view_*` metrics; the gauges
/// contribute to global sums and retract their contribution when the
/// view dies (see docs/OBSERVABILITY.md).
struct ViewMetrics {
  obs::Counter recomputations;
  obs::Counter reads;
  obs::Counter reads_from_materialization;
  obs::Counter reads_moved_backward;
  obs::Counter reads_moved_forward;
  obs::Counter patches_applied;
  obs::Counter tuples_recomputed;
  obs::Counter marked_stale;
  obs::Counter delta_applies;    ///< incremental maintenance rounds
  obs::Counter delta_fallbacks;  ///< stale updates that fell back
  obs::Counter delta_tuples;     ///< root ops applied incrementally
  obs::Counter replans;          ///< plans dropped by the ≥2× heuristic
  obs::Gauge pending_patches;      ///< per-view gauge
  obs::Gauge materialized_tuples;  ///< per-view gauge
  obs::Histogram recompute_latency;
  obs::Histogram delta_latency;

  ViewMetrics();
};

/// \brief One maintained materialized query result.
class MaterializedView {
 public:
  struct Options {
    RefreshMode mode = RefreshMode::kEagerRecompute;
    MovePolicy move_policy = MovePolicy::kRecompute;
    EvalOptions eval;  ///< compute_validity is forced on for kSchrodinger
    /// Run the Sec. 3.1 rewrite pass when the view's plan is built. The
    /// rewrites preserve contents and per-tuple texps but can *grow*
    /// texp(e), changing when a non-monotonic view recomputes — so they
    /// are opt-in. Because the optimized plan is cached, the pass runs
    /// once per view, not once per recomputation.
    bool rewrite_plan = false;
    /// Maintain the view incrementally when a base relation reports an
    /// explicit update: instead of recomputing, pull the base's recorded
    /// delta stream (Relation::DeltasSince) and push it through the
    /// cached plan (plan::DeltaPropagator) — O(|delta|) instead of
    /// O(|base|). Falls back to recomputation whenever the plan has an
    /// unsupported operator, the base was mutated through an untracked
    /// path, the delta ring overflowed, or texp(e) has already passed;
    /// correctness never depends on the incremental path
    /// (docs/PERFORMANCE.md §6). Seeding is demand-driven: the first
    /// explicit update's maintenance round recomputes and seeds, so
    /// expiration-only views never pay the capture/seeding overhead.
    bool incremental = true;
  };

  MaterializedView(ExpressionPtr expr, Options options);

  const ExpressionPtr& expression() const { return expr_; }
  RefreshMode mode() const { return options_.mode; }

  /// \brief Display name for diagnostics and structured maintenance
  /// events ("(anonymous)" until ViewManager::CreateView names it).
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// \brief Snapshot of the maintenance counters (thin view over the
  /// per-view metrics; see ViewMetrics).
  ViewStats stats() const {
    return ViewStats{metrics_.recomputations.value(),
                     metrics_.reads.value(),
                     metrics_.reads_from_materialization.value(),
                     metrics_.reads_moved_backward.value(),
                     metrics_.reads_moved_forward.value(),
                     metrics_.patches_applied.value(),
                     metrics_.tuples_recomputed.value(),
                     metrics_.delta_applies.value(),
                     metrics_.delta_fallbacks.value()};
  }

  const ViewMetrics& metrics() const { return metrics_; }

  /// \brief Materializes the view at `now`. Must be called once before
  /// AdvanceTo/Read. kPatchDifference requires a difference root.
  Status Initialize(const Database& db, Timestamp now);

  /// \brief Applies maintenance due up to `now` (policy-dependent); time
  /// must not move backwards.
  Status AdvanceTo(const Database& db, Timestamp now);

  /// \brief The view contents at `now` (performs due maintenance first).
  /// Under kSchrodinger + kMoveBackward/kMoveForward, the returned
  /// relation may reflect a nearby valid time instead; `served_at`, when
  /// non-null, receives the time actually served.
  Result<Relation> Read(const Database& db, Timestamp now,
                        Timestamp* served_at = nullptr);

  /// \brief Current expression expiration time (∞ = never invalid).
  Timestamp texp() const { return result_.texp; }

  /// \brief Validity intervals (meaningful under kSchrodinger).
  const IntervalSet& validity() const { return result_.validity; }

  /// \brief Stored result (tuples may include expired ones not yet
  /// filtered; Read applies expτ).
  const MaterializedResult& result() const { return result_; }

  /// \brief Patch-mode: helper entries not yet applied.
  size_t pending_patches() const { return helper_.size() - patch_cursor_; }

  bool initialized() const { return initialized_; }

  /// \brief Marks the materialization stale because a base relation was
  /// explicitly updated (insert/delete outside expiration — the paper's
  /// no-update assumption, lifted incrementally in DESIGN.md §6): the
  /// next maintenance point applies the recorded base deltas through the
  /// cached plan, or recomputes when the incremental path is unavailable.
  /// Transitions to stale bump `expdb_view_marked_stale_total`.
  ///
  /// The cached plan is kept: its cardinality estimates only steer
  /// performance decisions (build sides, parallel annotations), and
  /// dropping it on every update would defeat both the plan cache and
  /// the delta path. The next maintenance re-plans only when a base
  /// cardinality drifted ≥2× from its plan-time snapshot (MaybeReplan,
  /// `expdb_view_replans_total`).
  void MarkStale() {
    if (!stale_) metrics_.marked_stale.Increment();
    stale_ = true;
    update_seen_ = true;
  }
  bool stale() const { return stale_; }

  /// \brief The cached physical plan (null until the first
  /// materialization). Recomputations execute this plan directly; the
  /// planner — including the optional rewrite pass — runs once per view.
  const plan::PhysicalPlanPtr& plan() const { return plan_; }

 private:
  /// Per-base delta cursor: the (instance id, epoch) of a tracked base
  /// relation at the instant the current materialization was produced.
  using BaseCursor = Relation::DeltaCursor;

  Status EnsurePlan(const Database& db);
  /// Drops the cached plan when a base cardinality drifted ≥2× from its
  /// plan-time snapshot (stale estimates steer build sides and parallel
  /// annotations; small drifts don't change the decisions).
  void MaybeReplan(const Database& db);
  Status Recompute(const Database& db, Timestamp now,
                   bool count_as_maintenance = true);
  /// Seeds the delta propagator and base cursors from a recompute's
  /// NodeCapture (no-op when the plan is not incrementalizable).
  void SeedPropagator(const Database& db, const plan::NodeCapture& capture);
  /// The incremental stale path: pulls the base delta streams and pushes
  /// them through the cached plan. Returns true when the view was
  /// maintained incrementally, false when the caller must recompute.
  Result<bool> TryApplyDeltas(const Database& db, Timestamp now);
  void ApplyPatches(Timestamp now);
  void UpdateGauges();

  ExpressionPtr expr_;
  Options options_;
  std::string name_ = "(anonymous)";
  plan::PhysicalPlanPtr plan_;
  /// Plan-time base cardinalities backing the MaybeReplan heuristic.
  std::map<std::string, size_t> plan_base_sizes_;
  MaterializedResult result_;
  // kPatchDifference: Theorem 3 helper entries sorted by appears_at; a
  // cursor replaces pops (delta application regenerates the queue; base
  // updates otherwise force recomputation).
  std::vector<DifferencePatchEntry> helper_;
  size_t patch_cursor_ = 0;
  // Incremental maintenance state: null when the plan is not
  // incrementalizable (or Options::incremental is off).
  std::unique_ptr<plan::DeltaPropagator> propagator_;
  std::map<std::string, BaseCursor> base_cursors_;
  Timestamp last_advance_;
  ViewMetrics metrics_;
  bool initialized_ = false;
  bool stale_ = false;
  /// True once MarkStale has ever been called. Incremental state is
  /// seeded on demand: a view that only ever ages by expiration
  /// (the paper's no-update world) never pays for the per-node capture
  /// and propagator seeding — its recomputes stay exactly as cheap as
  /// before the delta engine existed. The price is that the first stale
  /// maintenance round always recomputes (the mutations preceding it
  /// were never recorded); every later one is eligible for the
  /// O(|delta|) path.
  bool update_seen_ = false;
};

}  // namespace expdb

#endif  // EXPDB_VIEW_MATERIALIZED_VIEW_H_
