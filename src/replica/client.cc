#include "replica/client.h"

#include "obs/log.h"

namespace expdb {

namespace {

/// Sync-decision event: why this client went back to the server, under
/// which protocol, and what texp(e) the expiring copy carried.
void LogRefetchDecision(SyncProtocol protocol, const std::string& query,
                        const char* reason, Timestamp texp) {
  obs::EventLog& log = obs::EventLog::Global();
  if (!log.enabled()) return;
  log.Emit(obs::LogSeverity::kInfo, "replica", "refetch",
           {{"query", query},
            {"protocol", std::string(SyncProtocolToString(protocol))},
            {"reason", reason},
            {"texp", texp.ToString()}});
}

}  // namespace

std::string_view SyncProtocolToString(SyncProtocol protocol) {
  switch (protocol) {
    case SyncProtocol::kNaivePeriodic:
      return "naive-periodic";
    case SyncProtocol::kExpirationAware:
      return "expiration-aware";
    case SyncProtocol::kExpirationAwarePatch:
      return "expiration-aware-patch";
  }
  return "?";
}

Status ReplicationClient::Fetch(const std::string& name, Subscription* sub,
                                Timestamp now) {
  // The request span covers the round trip; its context travels to the
  // server inside the message as the traceparent header, so the server's
  // spans stitch under this one.
  obs::ScopedSpan span("replica.client.fetch");
  const std::string traceparent = TraceParentHeader::Capture().Serialize();
  // The patch protocol only applies to difference-rooted queries; other
  // shapes degrade gracefully to the plain expiration-aware fetch.
  bool patchable = false;
  if (options_.protocol == SyncProtocol::kExpirationAwarePatch) {
    auto query = server_->GetQuery(name);
    patchable = query.ok() && (*query)->kind() == ExprKind::kDifference;
  }
  if (patchable) {
    EXPDB_ASSIGN_OR_RETURN(
        DifferenceEvalResult diff,
        server_->FetchWithHelper(name, now, net_, traceparent));
    sub->result = std::move(diff.result);
    sub->helper = std::move(diff.helper);
    sub->patch_cursor = 0;
    sub->children_texp = diff.children_texp;
    // Root invalidations are neutralized by patching.
    sub->result.texp = diff.children_texp;
  } else {
    EXPDB_ASSIGN_OR_RETURN(sub->result,
                           server_->Fetch(name, now, net_, traceparent));
  }
  sub->last_fetch = now;
  metrics_.fetches.Increment();
  return Status::OK();
}

Status ReplicationClient::Subscribe(const std::string& name, Timestamp now) {
  if (subscriptions_.find(name) != subscriptions_.end()) {
    return Status::AlreadyExists("already subscribed to '" + name + "'");
  }
  Subscription sub;
  EXPDB_RETURN_NOT_OK(Fetch(name, &sub, now));
  subscriptions_.emplace(name, std::move(sub));
  return Status::OK();
}

void ReplicationClient::ApplyPatches(Subscription* sub, Timestamp now) {
  while (sub->patch_cursor < sub->helper.size() &&
         sub->helper[sub->patch_cursor].appears_at <= now) {
    const DifferencePatchEntry& entry = sub->helper[sub->patch_cursor++];
    if (entry.expires_at > now) {
      sub->result.relation.InsertUnchecked(entry.tuple, entry.expires_at);
      metrics_.patches_applied.Increment();
    }
  }
}

Result<Relation> ReplicationClient::Read(const std::string& name,
                                         Timestamp now) {
  auto it = subscriptions_.find(name);
  if (it == subscriptions_.end()) {
    return Status::NotFound("not subscribed to '" + name + "'");
  }
  Subscription& sub = it->second;
  metrics_.reads.Increment();

  switch (options_.protocol) {
    case SyncProtocol::kNaivePeriodic: {
      // The baseline neither understands expiration times nor invalidity:
      // it serves the raw last copy, re-fetched on a timer.
      if (now >= sub.last_fetch + options_.poll_interval) {
        LogRefetchDecision(options_.protocol, name, "poll_interval_elapsed",
                           sub.result.texp);
        EXPDB_RETURN_NOT_OK(Fetch(name, &sub, now));
      }
      // Serve everything fetched, stale or not (no expτ filtering: the
      // naive client received no expiration metadata).
      return sub.result.relation;
    }
    case SyncProtocol::kExpirationAware: {
      if (sub.result.texp <= now) {
        LogRefetchDecision(options_.protocol, name, "texp_elapsed",
                           sub.result.texp);
        EXPDB_RETURN_NOT_OK(Fetch(name, &sub, now));
      }
      return sub.result.relation.UnexpiredAt(now);
    }
    case SyncProtocol::kExpirationAwarePatch: {
      ApplyPatches(&sub, now);
      if (sub.result.texp <= now) {
        LogRefetchDecision(options_.protocol, name, "texp_elapsed",
                           sub.result.texp);
        EXPDB_RETURN_NOT_OK(Fetch(name, &sub, now));
        ApplyPatches(&sub, now);
      }
      return sub.result.relation.UnexpiredAt(now);
    }
  }
  return Status::Internal("unknown protocol");
}

}  // namespace expdb
