// SimulatedNetwork: message/tuple/latency accounting for the paper's
// loosely-coupled setting.
//
// Substitution note (see DESIGN.md): the paper motivates expiration times
// with Web-service and mobile-network deployments where "determining cost
// factors and bottlenecks ... are network traffic and latency". ExpDB
// simulates that environment with an explicit cost-counting channel
// instead of real sockets — every claim measured over it is about message
// and tuple counts, which the simulation preserves exactly.

#ifndef EXPDB_REPLICA_NETWORK_H_
#define EXPDB_REPLICA_NETWORK_H_

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace expdb {

/// \brief Wire form of an obs::TraceContext, carried as a header field in
/// every simulated client->server request message so server-side spans
/// stitch under the client's request span (one connected span tree across
/// the simulated network). Format: two 16-digit lower-case hex fields,
/// "<trace_id>-<span_id>"; an inactive context serializes to "".
struct TraceParentHeader {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  /// \brief Captures the calling thread's current context.
  static TraceParentHeader Capture() {
    const obs::TraceContext ctx = obs::CurrentTraceContext();
    return TraceParentHeader{ctx.trace_id, ctx.span_id};
  }

  /// \brief Decodes a wire header; malformed or empty input yields the
  /// inactive header (requests from untraced clients stay untraced).
  static TraceParentHeader Parse(std::string_view wire) {
    TraceParentHeader out;
    if (wire.size() != 33 || wire[16] != '-') return out;
    char buf[17];
    char* end = nullptr;
    std::snprintf(buf, sizeof(buf), "%.16s", wire.data());
    out.trace_id = std::strtoull(buf, &end, 16);
    if (end == nullptr || *end != '\0') return TraceParentHeader{};
    std::snprintf(buf, sizeof(buf), "%.16s", wire.data() + 17);
    out.span_id = std::strtoull(buf, &end, 16);
    if (end == nullptr || *end != '\0') return TraceParentHeader{};
    return out;
  }

  std::string Serialize() const {
    if (trace_id == 0) return std::string();
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64 "-%016" PRIx64, trace_id,
                  span_id);
    return buf;
  }

  obs::TraceContext ToContext() const {
    return obs::TraceContext{trace_id, span_id};
  }
};

/// Cost model of one logical channel.
struct NetworkCostModel {
  /// Fixed per-message latency units (round trip setup).
  double per_message_latency = 50.0;
  /// Additional latency units per transferred tuple.
  double per_tuple_latency = 1.0;
};

/// Accumulated traffic counters. Since the obs refactor this is a *thin
/// read view* assembled from the channel's metric objects (the single
/// source of truth, which also feed the process-wide MetricsRegistry).
/// `latency_units` is derived: per_message_latency * messages +
/// per_tuple_latency * tuples_transferred.
struct NetworkStats {
  uint64_t messages = 0;
  uint64_t tuples_transferred = 0;
  double latency_units = 0.0;

  std::string ToString() const;
};

/// \brief Counts the cost of server->client transfers. Each channel owns
/// instance-local counters parented onto the process-wide
/// `expdb_replica_messages_total` / `expdb_replica_tuples_transferred_total`
/// aggregates (see docs/OBSERVABILITY.md).
class SimulatedNetwork {
 public:
  explicit SimulatedNetwork(NetworkCostModel model = {}) : model_(model) {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
    messages_.SetParent(r.GetCounter("expdb_replica_messages_total"));
    tuples_.SetParent(
        r.GetCounter("expdb_replica_tuples_transferred_total"));
  }

  /// \brief Records one response message carrying `tuples` tuples.
  void CountMessage(uint64_t tuples) {
    messages_.Increment();
    tuples_.Increment(tuples);
  }

  /// \brief Snapshot of the traffic counters (thin view over the channel
  /// metrics; latency is derived from the cost model).
  NetworkStats stats() const {
    const uint64_t messages = messages_.value();
    const uint64_t tuples = tuples_.value();
    return NetworkStats{
        messages, tuples,
        model_.per_message_latency * static_cast<double>(messages) +
            model_.per_tuple_latency * static_cast<double>(tuples)};
  }

  /// \brief Zeroes this channel's counters. The process-wide aggregates
  /// keep their cumulative totals (Prometheus-style).
  void Reset() {
    messages_.Reset();
    tuples_.Reset();
  }

 private:
  NetworkCostModel model_;
  obs::Counter messages_;
  obs::Counter tuples_;
};

}  // namespace expdb

#endif  // EXPDB_REPLICA_NETWORK_H_
