// SimulatedNetwork: message/tuple/latency accounting for the paper's
// loosely-coupled setting.
//
// Substitution note (see DESIGN.md): the paper motivates expiration times
// with Web-service and mobile-network deployments where "determining cost
// factors and bottlenecks ... are network traffic and latency". ExpDB
// simulates that environment with an explicit cost-counting channel
// instead of real sockets — every claim measured over it is about message
// and tuple counts, which the simulation preserves exactly.

#ifndef EXPDB_REPLICA_NETWORK_H_
#define EXPDB_REPLICA_NETWORK_H_

#include <cstdint>
#include <string>

namespace expdb {

/// Cost model of one logical channel.
struct NetworkCostModel {
  /// Fixed per-message latency units (round trip setup).
  double per_message_latency = 50.0;
  /// Additional latency units per transferred tuple.
  double per_tuple_latency = 1.0;
};

/// Accumulated traffic counters.
struct NetworkStats {
  uint64_t messages = 0;
  uint64_t tuples_transferred = 0;
  double latency_units = 0.0;

  std::string ToString() const;
};

/// \brief Counts the cost of server->client transfers.
class SimulatedNetwork {
 public:
  explicit SimulatedNetwork(NetworkCostModel model = {}) : model_(model) {}

  /// \brief Records one response message carrying `tuples` tuples.
  void CountMessage(uint64_t tuples) {
    ++stats_.messages;
    stats_.tuples_transferred += tuples;
    stats_.latency_units +=
        model_.per_message_latency +
        model_.per_tuple_latency * static_cast<double>(tuples);
  }

  const NetworkStats& stats() const { return stats_; }
  void Reset() { stats_ = NetworkStats{}; }

 private:
  NetworkCostModel model_;
  NetworkStats stats_;
};

}  // namespace expdb

#endif  // EXPDB_REPLICA_NETWORK_H_
