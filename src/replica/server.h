// ReplicationServer: the data source of the loosely-coupled setting. It
// owns nothing but a borrowed database and a registry of named queries;
// clients fetch materialized results (with expiration times) through a
// cost-counting network.

#ifndef EXPDB_REPLICA_SERVER_H_
#define EXPDB_REPLICA_SERVER_H_

#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "core/eval.h"
#include "plan/plan.h"
#include "replica/network.h"

namespace expdb {

/// \brief Serves registered queries over a simulated network.
///
/// Thread-safe: the query registry is guarded by a reader/writer lock, so
/// many client replicas may Fetch concurrently while RegisterQuery takes
/// the lock exclusively. The borrowed database is *not* protected here —
/// callers coordinate base-table mutation against fetches (the engine
/// does so via its snapshot locks).
class ReplicationServer {
 public:
  explicit ReplicationServer(const Database* db, EvalOptions eval = {})
      : db_(db),
        eval_(eval),
        fetches_(obs::MetricsRegistry::Global().GetCounter(
            "expdb_replica_fetches_total")),
        helper_entries_(obs::MetricsRegistry::Global().GetCounter(
            "expdb_replica_helper_entries_total")) {}

  /// \brief Registers a named query clients may subscribe to. The query
  /// is planned once here (schema validation included); every Fetch
  /// executes the cached physical plan. Rewrites are not applied — the
  /// served texps and Theorem 3 helper contents stay exactly those of the
  /// registered expression.
  Status RegisterQuery(const std::string& name, ExpressionPtr expr);

  bool HasQuery(const std::string& name) const {
    std::shared_lock<std::shared_mutex> guard(mu_);
    return queries_.find(name) != queries_.end();
  }

  Result<ExpressionPtr> GetQuery(const std::string& name) const;

  /// \brief Evaluates the named query at `tau`, counting the transfer of
  /// the result tuples on `net`. `traceparent` is the request message's
  /// trace header (TraceParentHeader wire form; empty = untraced): the
  /// server's spans stitch under the client's request span.
  Result<MaterializedResult> Fetch(const std::string& name, Timestamp tau,
                                   SimulatedNetwork* net,
                                   std::string_view traceparent = {}) const;

  /// \brief Fetch plus the Theorem 3 helper entries (root must be −exp);
  /// the helper tuples are counted as additional up-front transfer — the
  /// paper's "classic trade-off ... between saving future communication
  /// and ... up-front communication cost".
  Result<DifferenceEvalResult> FetchWithHelper(
      const std::string& name, Timestamp tau, SimulatedNetwork* net,
      std::string_view traceparent = {}) const;

 private:
  struct RegisteredQuery {
    ExpressionPtr expr;
    plan::PhysicalPlanPtr plan;  ///< planned once at registration
  };

  const Database* db_;
  EvalOptions eval_;
  /// Guards queries_. Shared for fetches, exclusive for registration.
  mutable std::shared_mutex mu_;
  std::map<std::string, RegisteredQuery> queries_;
  // Process-wide counters (registry-owned): fetches served and Theorem 3
  // helper entries shipped up front.
  obs::Counter* fetches_;
  obs::Counter* helper_entries_;
};

}  // namespace expdb

#endif  // EXPDB_REPLICA_SERVER_H_
