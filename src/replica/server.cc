#include "replica/server.h"

namespace expdb {

Status ReplicationServer::RegisterQuery(const std::string& name,
                                        ExpressionPtr expr) {
  if (expr == nullptr) return Status::InvalidArgument("null expression");
  // Validate the query against the catalog before accepting it.
  EXPDB_RETURN_NOT_OK(expr->InferSchema(*db_).status());
  auto [it, inserted] = queries_.emplace(name, std::move(expr));
  if (!inserted) {
    return Status::AlreadyExists("query '" + name + "' already registered");
  }
  return Status::OK();
}

Result<ExpressionPtr> ReplicationServer::GetQuery(
    const std::string& name) const {
  auto it = queries_.find(name);
  if (it == queries_.end()) {
    return Status::NotFound("no query named '" + name + "'");
  }
  return it->second;
}

Result<MaterializedResult> ReplicationServer::Fetch(
    const std::string& name, Timestamp tau, SimulatedNetwork* net) const {
  EXPDB_ASSIGN_OR_RETURN(ExpressionPtr expr, GetQuery(name));
  EXPDB_ASSIGN_OR_RETURN(MaterializedResult result,
                         Evaluate(expr, *db_, tau, eval_));
  fetches_->Increment();
  if (net != nullptr) net->CountMessage(result.relation.size());
  return result;
}

Result<DifferenceEvalResult> ReplicationServer::FetchWithHelper(
    const std::string& name, Timestamp tau, SimulatedNetwork* net) const {
  EXPDB_ASSIGN_OR_RETURN(ExpressionPtr expr, GetQuery(name));
  EXPDB_ASSIGN_OR_RETURN(DifferenceEvalResult result,
                         EvaluateDifferenceRoot(expr, *db_, tau, eval_));
  fetches_->Increment();
  helper_entries_->Increment(result.helper.size());
  if (net != nullptr) {
    net->CountMessage(result.result.relation.size() + result.helper.size());
  }
  return result;
}

}  // namespace expdb
