#include "replica/server.h"

#include "plan/cache.h"
#include "plan/executor.h"
#include "plan/planner.h"

namespace expdb {

using plan::PlanCacheHits;

Status ReplicationServer::RegisterQuery(const std::string& name,
                                        ExpressionPtr expr) {
  if (expr == nullptr) return Status::InvalidArgument("null expression");
  // Plan once up front: this validates the query against the catalog
  // (schema inference, predicate/projection checks) with the same status
  // codes the evaluator used to raise, and every Fetch afterwards
  // executes the cached plan without re-planning.
  plan::PlannerOptions popts;
  popts.eval = eval_;
  EXPDB_ASSIGN_OR_RETURN(plan::PhysicalPlanPtr plan,
                         plan::Planner::Plan(expr, *db_, popts));
  std::unique_lock<std::shared_mutex> guard(mu_);
  auto [it, inserted] = queries_.emplace(
      name, RegisteredQuery{std::move(expr), std::move(plan)});
  if (!inserted) {
    return Status::AlreadyExists("query '" + name + "' already registered");
  }
  return Status::OK();
}

Result<ExpressionPtr> ReplicationServer::GetQuery(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> guard(mu_);
  auto it = queries_.find(name);
  if (it == queries_.end()) {
    return Status::NotFound("no query named '" + name + "'");
  }
  return it->second.expr;
}

Result<MaterializedResult> ReplicationServer::Fetch(
    const std::string& name, Timestamp tau, SimulatedNetwork* net,
    std::string_view traceparent) const {
  // Re-establish the requesting client's trace context from the message
  // header: the serving side's spans (this one and the nested eval.root)
  // become children of the client's request span.
  obs::TraceContextScope trace_scope(
      TraceParentHeader::Parse(traceparent).ToContext());
  obs::ScopedSpan span("replica.server.fetch");
  std::shared_lock<std::shared_mutex> guard(mu_);
  auto it = queries_.find(name);
  if (it == queries_.end()) {
    return Status::NotFound("no query named '" + name + "'");
  }
  PlanCacheHits()->Increment();
  EXPDB_ASSIGN_OR_RETURN(
      MaterializedResult result,
      plan::ExecutePlan(*it->second.plan, *db_, tau, eval_));
  fetches_->Increment();
  if (net != nullptr) net->CountMessage(result.relation.size());
  return result;
}

Result<DifferenceEvalResult> ReplicationServer::FetchWithHelper(
    const std::string& name, Timestamp tau, SimulatedNetwork* net,
    std::string_view traceparent) const {
  obs::TraceContextScope trace_scope(
      TraceParentHeader::Parse(traceparent).ToContext());
  obs::ScopedSpan span("replica.server.fetch");
  std::shared_lock<std::shared_mutex> guard(mu_);
  auto it = queries_.find(name);
  if (it == queries_.end()) {
    return Status::NotFound("no query named '" + name + "'");
  }
  const ExpressionPtr& expr = it->second.expr;
  if (expr->kind() != ExprKind::kDifference &&
      expr->kind() != ExprKind::kAntiJoin) {
    return Status::InvalidArgument(
        "EvaluateDifferenceRoot requires a difference or anti-join root");
  }
  PlanCacheHits()->Increment();
  EXPDB_ASSIGN_OR_RETURN(
      DifferenceEvalResult result,
      plan::ExecutePlanDifferenceRoot(*it->second.plan, *db_, tau, eval_));
  fetches_->Increment();
  helper_entries_->Increment(result.helper.size());
  if (net != nullptr) {
    net->CountMessage(result.result.relation.size() + result.helper.size());
  }
  return result;
}

}  // namespace expdb
