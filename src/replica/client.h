// ReplicationClient: a remote device holding materialized query results
// "as far as possible independently of, but in synchrony with" the base
// relations (paper Sec. 1).
//
// Three synchronization protocols:
//  * kNaivePeriodic     — the pre-expiration-times baseline: re-fetch the
//    whole result every poll interval; between polls the copy silently
//    goes stale.
//  * kExpirationAware   — fetch once with per-tuple texps and texp(e);
//    expire tuples locally; re-fetch only when texp(e) passes. Reads are
//    always exact.
//  * kExpirationAwarePatch — for difference-rooted queries: additionally
//    fetch the Theorem 3 helper up front; patch locally; with monotonic
//    arguments the client NEVER contacts the server again.

#ifndef EXPDB_REPLICA_CLIENT_H_
#define EXPDB_REPLICA_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "replica/server.h"

namespace expdb {

/// Client-side synchronization protocol.
enum class SyncProtocol {
  kNaivePeriodic,
  kExpirationAware,
  kExpirationAwarePatch,
};

std::string_view SyncProtocolToString(SyncProtocol protocol);

/// Per-client counters. Since the obs refactor this is a *thin read
/// view* assembled from the client's ClientMetrics (the single source of
/// truth, which also feed the process-wide MetricsRegistry).
struct ClientStats {
  uint64_t reads = 0;
  uint64_t fetches = 0;          ///< server round trips
  uint64_t patches_applied = 0;  ///< local helper-queue insertions
};

/// Instance-local metric handles of one ReplicationClient. `fetches`
/// aggregates into the process-wide `expdb_replica_refreshes_total` (a
/// re-fetch is the client-side refresh event the paper's cost arguments
/// count); reads/patches stay client-local.
struct ClientMetrics {
  obs::Counter reads;
  obs::Counter fetches;
  obs::Counter patches_applied;

  ClientMetrics() {
    fetches.SetParent(obs::MetricsRegistry::Global().GetCounter(
        "expdb_replica_refreshes_total"));
  }
};

/// \brief A loosely-coupled client maintaining subscribed query results.
class ReplicationClient {
 public:
  struct Options {
    SyncProtocol protocol = SyncProtocol::kExpirationAware;
    /// kNaivePeriodic: re-fetch when this many ticks elapsed since the
    /// last fetch.
    int64_t poll_interval = 10;
  };

  ReplicationClient(const ReplicationServer* server, SimulatedNetwork* net,
                    Options options)
      : server_(server), net_(net), options_(options) {}

  /// \brief Subscribes to a registered query, fetching it at `now`.
  Status Subscribe(const std::string& name, Timestamp now);

  /// \brief Reads the local copy at `now`, applying the protocol's
  /// maintenance (local expiry, patches, or re-fetches) first.
  Result<Relation> Read(const std::string& name, Timestamp now);

  /// \brief Snapshot of the per-client counters (thin view over the
  /// client metrics; see ClientMetrics).
  ClientStats stats() const {
    return ClientStats{metrics_.reads.value(), metrics_.fetches.value(),
                       metrics_.patches_applied.value()};
  }

 private:
  struct Subscription {
    MaterializedResult result;
    Timestamp last_fetch;
    // kExpirationAwarePatch only:
    std::vector<DifferencePatchEntry> helper;
    size_t patch_cursor = 0;
    Timestamp children_texp = Timestamp::Infinity();
  };

  Status Fetch(const std::string& name, Subscription* sub, Timestamp now);
  void ApplyPatches(Subscription* sub, Timestamp now);

  const ReplicationServer* server_;
  SimulatedNetwork* net_;
  Options options_;
  std::map<std::string, Subscription> subscriptions_;
  ClientMetrics metrics_;
};

}  // namespace expdb

#endif  // EXPDB_REPLICA_CLIENT_H_
