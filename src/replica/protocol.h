// Synchronization-protocol simulation harness (experiment C5).
//
// Drives a client against a server over a simulated network for a time
// horizon, reading subscribed queries on a schedule, and scores each
// protocol on traffic (messages, tuples, latency) and correctness (reads
// whose contents differ from ground-truth recomputation).

#ifndef EXPDB_REPLICA_PROTOCOL_H_
#define EXPDB_REPLICA_PROTOCOL_H_

#include <string>
#include <utility>
#include <vector>

#include "replica/client.h"

namespace expdb {

/// Parameters of one simulation run.
struct SimulationConfig {
  SyncProtocol protocol = SyncProtocol::kExpirationAware;
  /// Simulate times 0..horizon (inclusive).
  int64_t horizon = 100;
  /// The client reads every subscribed query every `read_interval` ticks.
  int64_t read_interval = 1;
  /// kNaivePeriodic: poll interval.
  int64_t poll_interval = 10;
};

/// Scored outcome of a run.
struct SimulationReport {
  SyncProtocol protocol;
  NetworkStats network;
  ClientStats client;
  uint64_t exact_reads = 0;
  uint64_t stale_reads = 0;  ///< contents differed from recomputation

  std::string ToString() const;
};

/// \brief True iff the two relations hold exactly the same tuple sets
/// (expiration times ignored — used to compare a possibly metadata-less
/// client copy against ground truth).
bool SameTupleSet(const Relation& a, const Relation& b);

/// \brief Runs one protocol over `queries` against `db` and scores it.
Result<SimulationReport> RunSyncSimulation(
    const Database& db,
    const std::vector<std::pair<std::string, ExpressionPtr>>& queries,
    const SimulationConfig& config);

}  // namespace expdb

#endif  // EXPDB_REPLICA_PROTOCOL_H_
