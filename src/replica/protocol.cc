#include "replica/protocol.h"

#include "obs/log.h"

namespace expdb {

std::string NetworkStats::ToString() const {
  return std::to_string(messages) + " msgs, " +
         std::to_string(tuples_transferred) + " tuples, " +
         std::to_string(static_cast<int64_t>(latency_units)) + " latency";
}

std::string SimulationReport::ToString() const {
  return std::string(SyncProtocolToString(protocol)) + ": " +
         network.ToString() + "; reads " + std::to_string(client.reads) +
         " (" + std::to_string(exact_reads) + " exact, " +
         std::to_string(stale_reads) + " stale); fetches " +
         std::to_string(client.fetches) + ", patches " +
         std::to_string(client.patches_applied);
}

bool SameTupleSet(const Relation& a, const Relation& b) {
  if (a.size() != b.size()) return false;
  bool equal = true;
  a.ForEach([&](const Tuple& t, Timestamp) {
    if (!b.Contains(t)) equal = false;
  });
  return equal;
}

Result<SimulationReport> RunSyncSimulation(
    const Database& db,
    const std::vector<std::pair<std::string, ExpressionPtr>>& queries,
    const SimulationConfig& config) {
  if (config.horizon < 0 || config.read_interval <= 0 ||
      config.poll_interval <= 0) {
    return Status::InvalidArgument("malformed simulation config");
  }

  ReplicationServer server(&db);
  for (const auto& [name, expr] : queries) {
    EXPDB_RETURN_NOT_OK(server.RegisterQuery(name, expr));
  }

  SimulatedNetwork net;
  ReplicationClient::Options copts;
  copts.protocol = config.protocol;
  copts.poll_interval = config.poll_interval;
  ReplicationClient client(&server, &net, copts);

  for (const auto& [name, expr] : queries) {
    EXPDB_RETURN_NOT_OK(client.Subscribe(name, Timestamp::Zero()));
  }

  SimulationReport report;
  report.protocol = config.protocol;

  for (int64_t t = 0; t <= config.horizon; t += config.read_interval) {
    const Timestamp now(t);
    // One sync round = one span; the client fetches (and the server
    // spans they trigger through the traceparent header) nest under it.
    obs::ScopedSpan round_span("replica.sync_round");
    for (const auto& [name, expr] : queries) {
      EXPDB_ASSIGN_OR_RETURN(Relation local, client.Read(name, now));
      // Ground truth: fresh recomputation, off the books (no traffic).
      EXPDB_ASSIGN_OR_RETURN(MaterializedResult truth,
                             Evaluate(expr, db, now));
      if (SameTupleSet(local, truth.relation)) {
        ++report.exact_reads;
      } else {
        ++report.stale_reads;
      }
    }
  }

  report.network = net.stats();
  report.client = client.stats();
  obs::EventLog& log = obs::EventLog::Global();
  if (log.enabled()) {
    log.Emit(obs::LogSeverity::kInfo, "replica", "sync_simulation",
             {{"protocol", std::string(SyncProtocolToString(config.protocol))},
              {"messages", std::to_string(report.network.messages)},
              {"tuples", std::to_string(report.network.tuples_transferred)},
              {"exact_reads", std::to_string(report.exact_reads)},
              {"stale_reads", std::to_string(report.stale_reads)}});
  }
  return report;
}

}  // namespace expdb
