// MaterializedResult: the closed form of evaluating an expiration-time
// algebra expression — a relation with per-tuple expiration times, plus
// the expression-level expiration time texp(e) and validity intervals.

#ifndef EXPDB_CORE_MATERIALIZED_RESULT_H_
#define EXPDB_CORE_MATERIALIZED_RESULT_H_

#include "common/timestamp.h"
#include "core/interval_set.h"
#include "relational/relation.h"

namespace expdb {

/// \brief The materialization of an expression e at time τ.
///
/// Invariants established by the evaluator:
///  * `relation` contains exactly the tuples of e evaluated at
///    `materialized_at` (all unexpired at that time) with the expiration
///    times mandated by the paper's operator definitions;
///  * letting the tuples expire in place reproduces recomputation at any
///    τ' with materialized_at <= τ' < `texp` (Theorems 1 and 2);
///  * more precisely, the result matches recomputation at exactly the
///    times in `validity` (Schrödinger semantics, Sec. 3.4); `validity`
///    always contains [materialized_at, texp).
struct MaterializedResult {
  Relation relation;
  Timestamp materialized_at;
  /// texp(e): a lower bound on the first time the materialization becomes
  /// invalid. ∞ for monotonic expressions (Theorem 1).
  Timestamp texp = Timestamp::Infinity();
  /// Exact validity intervals. When the evaluator is run without validity
  /// computation, this is the sound under-approximation
  /// [materialized_at, texp).
  IntervalSet validity;
};

}  // namespace expdb

#endif  // EXPDB_CORE_MATERIALIZED_RESULT_H_
