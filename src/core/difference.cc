#include "core/difference.h"

#include <algorithm>

namespace expdb {

DifferenceAnalysis AnalyzeDifference(const Relation& left,
                                     const Relation& right) {
  DifferenceAnalysis out;
  out.result = Relation(left.schema());

  Timestamp min_appears = Timestamp::Infinity();
  Timestamp max_expires = Timestamp::Zero();

  left.ForEach([&](const Tuple& t, Timestamp texp_r) {
    auto texp_s = right.GetTexp(t);
    if (!texp_s.has_value()) {
      // Case (1): t ∈ R ∧ t ∉ S — in the result with texp_R(t).
      out.result.InsertUnchecked(t, texp_r);
      return;
    }
    // Case (3): t in both.
    ++out.common_count;
    if (texp_r > *texp_s) {
      // Case (3a): critical — t must re-appear at texp_S(t).
      out.critical.push_back({t, *texp_s, texp_r});
      out.invalid_windows.Add(*texp_s, texp_r);
      min_appears = Timestamp::Min(min_appears, *texp_s);
      max_expires = Timestamp::Max(max_expires, texp_r);
    }
    // Case (3b): texp_R <= texp_S — never re-appears; nothing to do.
  });
  // Case (2): t ∉ R ∧ t ∈ S — disregarded entirely.

  std::sort(out.critical.begin(), out.critical.end(),
            [](const DifferencePatchEntry& a, const DifferencePatchEntry& b) {
              if (a.appears_at != b.appears_at) {
                return a.appears_at < b.appears_at;
              }
              return a.tuple < b.tuple;
            });

  if (!out.critical.empty()) {
    out.tau_r = min_appears;
    out.coarse_invalid_window = IntervalSet(min_appears, max_expires);
  }
  return out;
}

}  // namespace expdb
