#include "core/difference.h"

#include <algorithm>
#include <mutex>

#include "common/thread_pool.h"

namespace expdb {

namespace {

/// Per-morsel accumulator for the parallel left scan.
struct DiffLocal {
  std::vector<Relation::Entry> result;
  std::vector<DifferencePatchEntry> critical;
  IntervalSet invalid_windows;
  size_t common_count = 0;
  Timestamp min_appears = Timestamp::Infinity();
  Timestamp max_expires = Timestamp::Zero();
};

/// Classifies the left entries [begin, end) against `right` (Table 2).
void ScanLeftRange(const std::vector<Relation::Entry>& left,
                   const Relation& right, size_t begin, size_t end,
                   DiffLocal* local) {
  for (size_t i = begin; i < end; ++i) {
    const Tuple& t = left[i].tuple;
    const Timestamp texp_r = left[i].texp;
    auto texp_s = right.GetTexp(t);
    if (!texp_s.has_value()) {
      // Case (1): t ∈ R ∧ t ∉ S — in the result with texp_R(t).
      local->result.push_back({t, texp_r});
      continue;
    }
    // Case (3): t in both.
    ++local->common_count;
    if (texp_r > *texp_s) {
      // Case (3a): critical — t must re-appear at texp_S(t).
      local->critical.push_back({t, *texp_s, texp_r});
      local->invalid_windows.Add(*texp_s, texp_r);
      local->min_appears = Timestamp::Min(local->min_appears, *texp_s);
      local->max_expires = Timestamp::Max(local->max_expires, texp_r);
    }
    // Case (3b): texp_R <= texp_S — never re-appears; nothing to do.
  }
  // Case (2): t ∉ R ∧ t ∈ S — disregarded entirely.
}

void MergeLocal(DiffLocal&& local, DiffLocal* total) {
  total->result.insert(total->result.end(),
                       std::make_move_iterator(local.result.begin()),
                       std::make_move_iterator(local.result.end()));
  total->critical.insert(total->critical.end(),
                         std::make_move_iterator(local.critical.begin()),
                         std::make_move_iterator(local.critical.end()));
  for (const Interval& iv : local.invalid_windows.intervals()) {
    total->invalid_windows.Add(iv);
  }
  total->common_count += local.common_count;
  total->min_appears = Timestamp::Min(total->min_appears, local.min_appears);
  total->max_expires = Timestamp::Max(total->max_expires, local.max_expires);
}

}  // namespace

DifferenceAnalysis AnalyzeDifference(const Relation& left,
                                     const Relation& right, size_t workers,
                                     size_t min_morsel) {
  const std::vector<Relation::Entry>& entries = left.entries();
  DiffLocal total;
  if (workers <= 1) {
    total.result.reserve(entries.size());
    ScanLeftRange(entries, right, 0, entries.size(), &total);
  } else {
    std::mutex mu;
    ParallelForOptions opts;
    opts.parallelism = workers;
    opts.min_morsel_size = min_morsel;
    ParallelFor(entries.size(), opts, [&](size_t begin, size_t end) {
      DiffLocal local;
      ScanLeftRange(entries, right, begin, end, &local);
      std::lock_guard<std::mutex> lock(mu);
      MergeLocal(std::move(local), &total);
    });
  }

  std::sort(total.critical.begin(), total.critical.end(),
            [](const DifferencePatchEntry& a, const DifferencePatchEntry& b) {
              if (a.appears_at != b.appears_at) {
                return a.appears_at < b.appears_at;
              }
              return a.tuple < b.tuple;
            });

  DifferenceAnalysis out;
  // Left entries are pairwise distinct, so the surviving subset is too.
  out.result =
      Relation::FromEntriesUnchecked(left.schema(), std::move(total.result));
  out.critical = std::move(total.critical);
  out.common_count = total.common_count;
  out.invalid_windows = std::move(total.invalid_windows);
  if (!out.critical.empty()) {
    out.tau_r = total.min_appears;
    out.coarse_invalid_window =
        IntervalSet(total.min_appears, total.max_expires);
  }
  return out;
}

}  // namespace expdb
