#include "core/aggregate.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace expdb {

std::string_view AggregateKindToString(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kMin:
      return "min";
    case AggregateKind::kMax:
      return "max";
    case AggregateKind::kSum:
      return "sum";
    case AggregateKind::kCount:
      return "count";
    case AggregateKind::kAvg:
      return "avg";
  }
  return "?";
}

std::string_view AggregateExpirationModeToString(AggregateExpirationMode m) {
  switch (m) {
    case AggregateExpirationMode::kConservative:
      return "conservative";
    case AggregateExpirationMode::kContributingSet:
      return "contributing-set";
    case AggregateExpirationMode::kExact:
      return "exact";
  }
  return "?";
}

ValueType AggregateFunction::ResultType(ValueType attr_type) const {
  switch (kind) {
    case AggregateKind::kMin:
    case AggregateKind::kMax:
      return attr_type;
    case AggregateKind::kSum:
      return attr_type == ValueType::kDouble ? ValueType::kDouble
                                             : ValueType::kInt64;
    case AggregateKind::kCount:
      return ValueType::kInt64;
    case AggregateKind::kAvg:
      return ValueType::kDouble;
  }
  return attr_type;
}

std::string AggregateFunction::ToString() const {
  std::string out(AggregateKindToString(kind));
  if (kind != AggregateKind::kCount) {
    out += "_" + std::to_string(attr + 1);  // paper subscripts are 1-based
  }
  return out;
}

namespace {

// Exact numeric accumulator: integer sums are kept in 128 bits so that
// sum/avg neutrality tests are free of floating-point rounding whenever the
// aggregated attribute is integral.
struct NumericSum {
  bool is_int = true;
  __int128 isum = 0;
  long double dsum = 0.0L;
  int64_t count = 0;

  Status Add(const Value& v) {
    if (v.is_int64() && is_int) {
      isum += v.AsInt64();
    } else {
      EXPDB_ASSIGN_OR_RETURN(double d, v.ToNumeric());
      if (is_int && count > 0) {
        // Late type widening: fold the integer prefix into the double sum.
        dsum = static_cast<long double>(isum);
      }
      is_int = false;
      dsum += static_cast<long double>(d);
    }
    ++count;
    return Status::OK();
  }

  /// Sum as a Value (int64 when integral; OutOfRange on int64 overflow).
  Result<Value> SumValue() const {
    if (is_int) {
      if (isum > static_cast<__int128>(INT64_MAX) ||
          isum < static_cast<__int128>(INT64_MIN)) {
        return Status::OutOfRange("sum overflows int64");
      }
      return Value(static_cast<int64_t>(isum));
    }
    return Value(static_cast<double>(dsum));
  }

  Result<Value> AvgValue() const {
    assert(count > 0);
    const double total =
        is_int ? static_cast<double>(isum) : static_cast<double>(dsum);
    return Value(total / static_cast<double>(count));
  }

  /// Exact equality of sums.
  bool SumEquals(const NumericSum& other) const {
    if (is_int && other.is_int) return isum == other.isum;
    const long double a = is_int ? static_cast<long double>(isum) : dsum;
    const long double b =
        other.is_int ? static_cast<long double>(other.isum) : other.dsum;
    return a == b;
  }

  /// Exact equality of averages via cross multiplication (no division).
  bool AvgEquals(const NumericSum& other) const {
    assert(count > 0 && other.count > 0);
    if (is_int && other.is_int) {
      return isum * other.count == other.isum * count;
    }
    const long double a = is_int ? static_cast<long double>(isum) : dsum;
    const long double b =
        other.is_int ? static_cast<long double>(other.isum) : other.dsum;
    return a * static_cast<long double>(other.count) ==
           b * static_cast<long double>(count);
  }

  NumericSum Minus(const NumericSum& part) const {
    NumericSum out;
    out.is_int = is_int && part.is_int;
    if (out.is_int) {
      out.isum = isum - part.isum;
    } else {
      const long double a = is_int ? static_cast<long double>(isum) : dsum;
      const long double b =
          part.is_int ? static_cast<long double>(part.isum) : part.dsum;
      out.dsum = a - b;
    }
    out.count = count - part.count;
    return out;
  }
};

// Entries of a partition sorted by expiration time (infinite last), plus
// the boundaries of its time slices (maximal runs of equal texp).
struct SlicedPartition {
  std::vector<PartitionEntry> sorted;
  // Index ranges [begin, end) of slices with *finite* texp, in texp order.
  std::vector<std::pair<size_t, size_t>> finite_slices;
};

SlicedPartition SliceByTexp(const std::vector<PartitionEntry>& partition) {
  SlicedPartition out;
  out.sorted = partition;
  std::stable_sort(out.sorted.begin(), out.sorted.end(),
                   [](const PartitionEntry& a, const PartitionEntry& b) {
                     return a.texp < b.texp;
                   });
  size_t i = 0;
  while (i < out.sorted.size() && out.sorted[i].texp.IsFinite()) {
    size_t j = i;
    while (j < out.sorted.size() && out.sorted[j].texp == out.sorted[i].texp) {
      ++j;
    }
    out.finite_slices.emplace_back(i, j);
    i = j;
  }
  return out;
}

// Suffix state for exact replay: for each index i of the sorted partition,
// the aggregate-relevant summary of entries [i, n).
struct SuffixState {
  // For min/max: suffix extremum values.
  std::vector<Value> extremum;
  // For sum/avg/count: suffix numeric sums (count carried inside).
  std::vector<NumericSum> sums;
};

Result<SuffixState> BuildSuffixes(const std::vector<PartitionEntry>& sorted,
                                  const AggregateFunction& f) {
  SuffixState s;
  const size_t n = sorted.size();
  switch (f.kind) {
    case AggregateKind::kMin:
    case AggregateKind::kMax: {
      s.extremum.resize(n);
      for (size_t i = n; i-- > 0;) {
        const Value& v = sorted[i].tuple->at(f.attr);
        if (i == n - 1) {
          s.extremum[i] = v;
        } else if (f.kind == AggregateKind::kMin) {
          s.extremum[i] = v < s.extremum[i + 1] ? v : s.extremum[i + 1];
        } else {
          s.extremum[i] = v > s.extremum[i + 1] ? v : s.extremum[i + 1];
        }
      }
      return s;
    }
    case AggregateKind::kSum:
    case AggregateKind::kAvg:
    case AggregateKind::kCount: {
      s.sums.resize(n + 1);
      for (size_t i = n; i-- > 0;) {
        s.sums[i] = s.sums[i + 1];
        if (f.kind == AggregateKind::kCount) {
          s.sums[i].count++;
        } else {
          EXPDB_RETURN_NOT_OK(s.sums[i].Add(sorted[i].tuple->at(f.attr)));
        }
      }
      return s;
    }
  }
  return Status::Internal("unknown aggregate kind");
}

// Whether the aggregate value over suffix [i, n) differs from the value
// over suffix [j, n), j > i. Suffix [j, n) must be non-empty.
bool SuffixValueChanges(const SuffixState& s, const AggregateFunction& f,
                        size_t i, size_t j) {
  switch (f.kind) {
    case AggregateKind::kMin:
    case AggregateKind::kMax:
      return s.extremum[i] != s.extremum[j];
    case AggregateKind::kSum:
      return !s.sums[i].SumEquals(s.sums[j]);
    case AggregateKind::kAvg:
      return !s.sums[i].AvgEquals(s.sums[j]);
    case AggregateKind::kCount:
      return s.sums[i].count != s.sums[j].count;
  }
  return false;
}

Timestamp PartitionDeath(const std::vector<PartitionEntry>& partition) {
  Timestamp death = Timestamp::Zero();
  for (const PartitionEntry& e : partition) {
    death = Timestamp::Max(death, e.texp);
  }
  return death;
}

Timestamp PartitionMinTexp(const std::vector<PartitionEntry>& partition) {
  Timestamp m = Timestamp::Infinity();
  for (const PartitionEntry& e : partition) {
    m = Timestamp::Min(m, e.texp);
  }
  return m;
}

// Closed-form contributing-set cap for min/max (Table 1): the result value
// stays correct until the last-expiring tuple holding the extremum value
// expires; tuples with non-extremal values are neutral, as are extremum
// holders that expire before that last one.
Timestamp ExtremumCap(const std::vector<PartitionEntry>& partition,
                      const AggregateFunction& f, const Value& value) {
  Timestamp last_holder = Timestamp::Zero();
  for (const PartitionEntry& e : partition) {
    if (e.tuple->at(f.attr) == value) {
      last_holder = Timestamp::Max(last_holder, e.texp);
    }
  }
  return last_holder;
}

// Closed-form contributing-set cap for sum/avg (Table 1): walk the time
// slices in expiration order; a slice is neutral iff removing it leaves the
// aggregate unchanged (slice sum == 0 for sum; slice average == running
// average for avg, tested by exact cross multiplication). The first
// non-neutral slice whose removal leaves the partition non-empty caps the
// lifetime; if no such slice exists, C = ∅ and the cap is the partition
// death (the paper's special-case formula).
Result<Timestamp> SumAvgCap(const SlicedPartition& sliced,
                            const AggregateFunction& f, Timestamp death) {
  NumericSum running;
  for (const PartitionEntry& e : sliced.sorted) {
    EXPDB_RETURN_NOT_OK(running.Add(e.tuple->at(f.attr)));
  }
  for (const auto& [begin, end] : sliced.finite_slices) {
    const bool remaining_nonempty = end < sliced.sorted.size();
    if (!remaining_nonempty) break;  // removal empties the partition
    NumericSum slice;
    for (size_t i = begin; i < end; ++i) {
      EXPDB_RETURN_NOT_OK(slice.Add(sliced.sorted[i].tuple->at(f.attr)));
    }
    bool neutral;
    if (f.kind == AggregateKind::kSum) {
      NumericSum zero;
      neutral = slice.SumEquals(zero);
    } else {
      neutral = slice.AvgEquals(running);
    }
    if (!neutral) return sliced.sorted[begin].texp;
    running = running.Minus(slice);
  }
  return death;
}

}  // namespace

Result<Value> ApplyAggregate(const AggregateFunction& f,
                             const std::vector<PartitionEntry>& partition) {
  if (partition.empty()) {
    return Status::InvalidArgument("aggregate over empty partition");
  }
  switch (f.kind) {
    case AggregateKind::kCount:
      return Value(static_cast<int64_t>(partition.size()));
    case AggregateKind::kMin:
    case AggregateKind::kMax: {
      Value best = partition.front().tuple->at(f.attr);
      for (const PartitionEntry& e : partition) {
        const Value& v = e.tuple->at(f.attr);
        if (f.kind == AggregateKind::kMin ? v < best : v > best) best = v;
      }
      return best;
    }
    case AggregateKind::kSum:
    case AggregateKind::kAvg: {
      NumericSum sum;
      for (const PartitionEntry& e : partition) {
        EXPDB_RETURN_NOT_OK(sum.Add(e.tuple->at(f.attr)));
      }
      return f.kind == AggregateKind::kSum ? sum.SumValue() : sum.AvgValue();
    }
  }
  return Status::Internal("unknown aggregate kind");
}

Result<std::vector<Timestamp>> PartitionChangeTimes(
    const std::vector<PartitionEntry>& partition,
    const AggregateFunction& f) {
  SlicedPartition sliced = SliceByTexp(partition);
  EXPDB_ASSIGN_OR_RETURN(SuffixState suffixes,
                         BuildSuffixes(sliced.sorted, f));
  std::vector<Timestamp> changes;
  for (const auto& [begin, end] : sliced.finite_slices) {
    if (end >= sliced.sorted.size()) break;  // partition empties here
    if (SuffixValueChanges(suffixes, f, begin, end)) {
      changes.push_back(sliced.sorted[begin].texp);
    }
  }
  return changes;
}

namespace {

// Whether the aggregate over suffix [j, n) deviates from the original
// materialized `value` by more than `tolerance`. Non-numeric values fall
// back to exact comparison.
bool SuffixDeviatesBeyond(const SuffixState& s, const AggregateFunction& f,
                          size_t j, const Value& value, double tolerance) {
  auto numeric_deviates = [&](double live) {
    auto original = value.ToNumeric();
    if (!original.ok()) return true;  // should not happen for numerics
    return std::abs(live - *original) > tolerance;
  };
  switch (f.kind) {
    case AggregateKind::kMin:
    case AggregateKind::kMax: {
      const Value& live = s.extremum[j];
      if (live.is_numeric() && value.is_numeric()) {
        return numeric_deviates(live.ToNumeric().value());
      }
      return live != value;
    }
    case AggregateKind::kSum: {
      const NumericSum& live = s.sums[j];
      const double d = live.is_int ? static_cast<double>(live.isum)
                                   : static_cast<double>(live.dsum);
      return numeric_deviates(d);
    }
    case AggregateKind::kAvg: {
      const NumericSum& live = s.sums[j];
      const double total = live.is_int ? static_cast<double>(live.isum)
                                       : static_cast<double>(live.dsum);
      return numeric_deviates(total / static_cast<double>(live.count));
    }
    case AggregateKind::kCount:
      return numeric_deviates(static_cast<double>(s.sums[j].count));
  }
  return true;
}

}  // namespace

Result<PartitionAnalysis> AnalyzeApproxPartition(
    const std::vector<PartitionEntry>& partition, const AggregateFunction& f,
    double tolerance) {
  if (partition.empty()) {
    return Status::InvalidArgument("aggregate over empty partition");
  }
  if (tolerance < 0) {
    return Status::InvalidArgument("tolerance must be non-negative");
  }
  PartitionAnalysis out;
  EXPDB_ASSIGN_OR_RETURN(out.value, ApplyAggregate(f, partition));
  out.death = PartitionDeath(partition);

  SlicedPartition sliced = SliceByTexp(partition);
  EXPDB_ASSIGN_OR_RETURN(SuffixState suffixes,
                         BuildSuffixes(sliced.sorted, f));
  out.change_cap = out.death;
  for (const auto& [begin, end] : sliced.finite_slices) {
    if (end >= sliced.sorted.size()) break;  // partition empties here
    if (SuffixDeviatesBeyond(suffixes, f, end, out.value, tolerance)) {
      out.change_cap = sliced.sorted[begin].texp;
      out.invalidates_expression = true;
      break;
    }
  }
  return out;
}

Result<PartitionAnalysis> AnalyzePartition(
    const std::vector<PartitionEntry>& partition, const AggregateFunction& f,
    AggregateExpirationMode mode) {
  if (partition.empty()) {
    return Status::InvalidArgument("aggregate over empty partition");
  }
  PartitionAnalysis out;
  EXPDB_ASSIGN_OR_RETURN(out.value, ApplyAggregate(f, partition));
  out.death = PartitionDeath(partition);

  switch (mode) {
    case AggregateExpirationMode::kConservative: {
      // Eq. (8): the whole partition's result tuples die with its
      // earliest-expiring member; if any member outlives that instant the
      // materialized expression is missing tuples from then on.
      out.change_cap = PartitionMinTexp(partition);
      out.invalidates_expression = out.change_cap < out.death;
      return out;
    }
    case AggregateExpirationMode::kContributingSet: {
      switch (f.kind) {
        case AggregateKind::kCount:
          // The paper: count strictly follows Eq. (8) — every expiration
          // changes the count.
          out.change_cap = PartitionMinTexp(partition);
          out.invalidates_expression = out.change_cap < out.death;
          return out;
        case AggregateKind::kMin:
        case AggregateKind::kMax:
          out.change_cap = ExtremumCap(partition, f, out.value);
          out.invalidates_expression = out.change_cap < out.death;
          return out;
        case AggregateKind::kSum:
        case AggregateKind::kAvg: {
          SlicedPartition sliced = SliceByTexp(partition);
          EXPDB_ASSIGN_OR_RETURN(out.change_cap,
                                 SumAvgCap(sliced, f, out.death));
          out.invalidates_expression = out.change_cap < out.death;
          return out;
        }
      }
      return Status::Internal("unknown aggregate kind");
    }
    case AggregateExpirationMode::kExact: {
      EXPDB_ASSIGN_OR_RETURN(std::vector<Timestamp> changes,
                             PartitionChangeTimes(partition, f));
      if (changes.empty()) {
        out.change_cap = out.death;
        out.invalidates_expression = false;
      } else {
        out.change_cap = changes.front();
        out.invalidates_expression = true;
      }
      return out;
    }
  }
  return Status::Internal("unknown aggregate expiration mode");
}

}  // namespace expdb
