#include "core/join_key_index.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/thread_pool.h"

namespace expdb {

namespace {

/// Smallest power of two >= n (and >= 8).
size_t NextPow2(size_t n) {
  size_t cap = 8;
  while (cap < n) cap <<= 1;
  return cap;
}

/// Decorrelates the partition selector (hash % P) from the in-partition
/// slot (Fibonacci multiplicative mix).
size_t MixHash(size_t h) { return h * 0x9e3779b97f4a7c15ULL; }

}  // namespace

JoinKeyIndex::JoinKeyIndex(const Relation& build, const Predicate& predicate,
                           size_t n_left, size_t workers)
    : predicate_(predicate) {
  for (auto [a, b] : predicate.TopLevelEqualities()) {
    if (a < n_left && b >= n_left) {
      left_cols_.push_back(a);
      right_cols_.push_back(b - n_left);
    } else if (b < n_left && a >= n_left) {
      left_cols_.push_back(b);
      right_cols_.push_back(a - n_left);
    }
  }
  // Covered <=> every top-level conjunct is one of the extracted
  // cross-side column equalities. TopLevelEqualities() only collects
  // column=column comparisons off the ∧-spine, so the predicate is exactly
  // the conjunction of cross-side equalities iff the counts line up.
  const size_t conjuncts = predicate.TopLevelConjuncts().size();
  covered_ = !left_cols_.empty() &&
             left_cols_.size() == conjuncts &&
             predicate.TopLevelEqualities().size() == conjuncts;

  if (!has_keys()) {
    all_.candidates.reserve(build.size());
    for (const Relation::Entry& e : build.entries()) {
      all_.candidates.push_back({&e.tuple, e.texp});
      all_.max_texp = Timestamp::Max(all_.max_texp, e.texp);
    }
    return;
  }
  if (workers > 1 && build.size() >= 2 * workers) {
    BuildParallel(build, workers);
  } else {
    BuildSerial(build);
  }
}

bool JoinKeyIndex::KeysEqual(const Tuple& probe,
                             const std::vector<size_t>& probe_cols,
                             const Tuple& rep) const {
  for (size_t k = 0; k < probe_cols.size(); ++k) {
    if (probe.at(probe_cols[k]) != rep.at(right_cols_[k])) return false;
  }
  return true;
}

void JoinKeyIndex::InsertIntoPartition(Partition* part, size_t hash,
                                       const Relation::Entry& entry) {
  const size_t mask = part->slots.size() - 1;
  size_t slot = MixHash(hash) & mask;
  for (;;) {
    const int32_t g = part->slots[slot];
    if (g < 0) {
      part->slots[slot] = static_cast<int32_t>(part->groups.size());
      part->reps.push_back(&entry.tuple);
      Group group;
      group.candidates.push_back({&entry.tuple, entry.texp});
      group.max_texp = entry.texp;
      part->groups.push_back(std::move(group));
      return;
    }
    if (KeysEqual(entry.tuple, right_cols_, *part->reps[g])) {
      Group& group = part->groups[g];
      group.candidates.push_back({&entry.tuple, entry.texp});
      group.max_texp = Timestamp::Max(group.max_texp, entry.texp);
      return;
    }
    slot = (slot + 1) & mask;
  }
}

void JoinKeyIndex::BuildSerial(const Relation& build) {
  partitions_.resize(1);
  Partition& part = partitions_[0];
  part.slots.assign(NextPow2(build.size() * 2), -1);
  part.groups.reserve(build.size());
  part.reps.reserve(build.size());
  for (const Relation::Entry& e : build.entries()) {
    InsertIntoPartition(&part, e.tuple.HashOfColumns(right_cols_), e);
  }
}

void JoinKeyIndex::BuildParallel(const Relation& build, size_t workers) {
  const std::vector<Relation::Entry>& entries = build.entries();
  const size_t P = workers;
  partitions_.resize(P);

  // Phase 1 — partitioning: W static chunks each scatter (hash, entry)
  // pairs into per-chunk, per-partition buckets; chunks are independent,
  // so no synchronization is needed.
  using Scattered = std::pair<size_t, const Relation::Entry*>;
  std::vector<std::vector<std::vector<Scattered>>> scat(
      P, std::vector<std::vector<Scattered>>(P));
  const size_t chunk = (entries.size() + P - 1) / P;
  ParallelForOptions opts;
  opts.parallelism = workers;
  opts.min_morsel_size = 1;
  opts.max_morsels_per_worker = 1;
  ParallelFor(P, opts, [&](size_t cb, size_t ce) {
    for (size_t c = cb; c < ce; ++c) {
      const size_t begin = std::min(c * chunk, entries.size());
      const size_t end = std::min(begin + chunk, entries.size());
      for (size_t i = begin; i < end; ++i) {
        const size_t h = entries[i].tuple.HashOfColumns(right_cols_);
        scat[c][h % P].emplace_back(h, &entries[i]);
      }
    }
  });

  // Phase 2 — per-partition group build: partition p is touched only by
  // the worker that owns index p.
  ParallelFor(P, opts, [&](size_t pb, size_t pe) {
    for (size_t p = pb; p < pe; ++p) {
      size_t total = 0;
      for (size_t c = 0; c < P; ++c) total += scat[c][p].size();
      Partition& part = partitions_[p];
      part.slots.assign(NextPow2(total * 2), -1);
      part.groups.reserve(total);
      part.reps.reserve(total);
      for (size_t c = 0; c < P; ++c) {
        for (const auto& [h, entry] : scat[c][p]) {
          InsertIntoPartition(&part, h, *entry);
        }
      }
    }
  });
}

const JoinKeyIndex::Group* JoinKeyIndex::Probe(
    const Tuple& left_tuple) const {
  if (!has_keys()) return all_.candidates.empty() ? nullptr : &all_;
  const size_t h = left_tuple.HashOfColumns(left_cols_);
  const Partition& part = partitions_.size() == 1
                              ? partitions_[0]
                              : partitions_[h % partitions_.size()];
  if (part.slots.empty()) return nullptr;
  const size_t mask = part.slots.size() - 1;
  size_t slot = MixHash(h) & mask;
  for (;;) {
    const int32_t g = part.slots[slot];
    if (g < 0) return nullptr;
    if (KeysEqual(left_tuple, left_cols_, *part.reps[g])) {
      return &part.groups[g];
    }
    slot = (slot + 1) & mask;
  }
}

std::optional<Timestamp> JoinKeyIndex::MaxMatchTexp(
    const Tuple& left_tuple) const {
  const Group* group = Probe(left_tuple);
  if (group == nullptr) return std::nullopt;
  if (covered_) return group->max_texp;  // key match implies the predicate
  std::optional<Timestamp> best;
  for (const Candidate& c : group->candidates) {
    if (!predicate_.Evaluate(left_tuple.Concat(*c.tuple))) continue;
    if (!best || c.texp > *best) best = c.texp;
  }
  return best;
}

}  // namespace expdb
