#include "core/interval_set.h"

#include <algorithm>

#include "common/str_util.h"

namespace expdb {

std::string Interval::ToString() const {
  return "[" + start.ToString() + ", " + end.ToString() + ")";
}

IntervalSet::IntervalSet(Timestamp start, Timestamp end) {
  Add(start, end);
}

bool IntervalSet::Contains(Timestamp t) const {
  // Binary search for the last interval with start <= t.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](Timestamp v, const Interval& iv) { return v < iv.start; });
  if (it == intervals_.begin()) return false;
  --it;
  return it->Contains(t);
}

void IntervalSet::Add(Timestamp start, Timestamp end) {
  if (start >= end) return;
  Interval merged{start, end};
  std::vector<Interval> out;
  out.reserve(intervals_.size() + 1);
  for (const Interval& iv : intervals_) {
    if (iv.end < merged.start || merged.end < iv.start) {
      // Disjoint and not even adjacent; note [a,b) and [b,c) merge.
      out.push_back(iv);
    } else {
      merged.start = std::min(merged.start, iv.start);
      merged.end = std::max(merged.end, iv.end);
    }
  }
  out.push_back(merged);
  std::sort(out.begin(), out.end(), [](const Interval& a, const Interval& b) {
    return a.start < b.start;
  });
  intervals_ = std::move(out);
}

void IntervalSet::Subtract(Timestamp start, Timestamp end) {
  if (start >= end) return;
  std::vector<Interval> out;
  out.reserve(intervals_.size() + 1);
  for (const Interval& iv : intervals_) {
    if (iv.end <= start || end <= iv.start) {
      out.push_back(iv);
      continue;
    }
    if (iv.start < start) out.push_back({iv.start, start});
    if (end < iv.end) out.push_back({end, iv.end});
  }
  intervals_ = std::move(out);
}

IntervalSet IntervalSet::Union(const IntervalSet& other) const {
  IntervalSet out = *this;
  for (const Interval& iv : other.intervals_) out.Add(iv);
  return out;
}

IntervalSet IntervalSet::Intersect(const IntervalSet& other) const {
  IntervalSet out;
  auto a = intervals_.begin();
  auto b = other.intervals_.begin();
  while (a != intervals_.end() && b != other.intervals_.end()) {
    const Timestamp lo = std::max(a->start, b->start);
    const Timestamp hi = std::min(a->end, b->end);
    if (lo < hi) out.Add(lo, hi);
    if (a->end < b->end) {
      ++a;
    } else {
      ++b;
    }
  }
  return out;
}

IntervalSet IntervalSet::ComplementFrom(Timestamp within_start) const {
  IntervalSet out = IntervalSet::From(within_start);
  for (const Interval& iv : intervals_) out.Subtract(iv);
  return out;
}

std::optional<Timestamp> IntervalSet::LastValidBefore(Timestamp t) const {
  std::optional<Timestamp> best;
  for (const Interval& iv : intervals_) {
    if (iv.start >= t) break;
    // The interval holds times < t; the latest is min(t, iv.end) - 1, but
    // on the discrete axis any time in [iv.start, min(t, iv.end)) works;
    // report the supremum-1 via the predecessor of the exclusive bound.
    Timestamp bound = std::min(t, iv.end);
    if (bound.IsInfinite()) {
      // [start, inf) with t infinite cannot happen (t is a query time and
      // finite in practice); fall back to the interval start.
      best = iv.start;
    } else {
      best = Timestamp(bound.ticks() - 1);
    }
  }
  return best;
}

std::optional<Timestamp> IntervalSet::FirstValidAtOrAfter(Timestamp t) const {
  for (const Interval& iv : intervals_) {
    if (iv.Contains(t)) return t;
    if (iv.start >= t) return iv.start;
  }
  return std::nullopt;
}

std::optional<Timestamp> IntervalSet::ValidUntil(Timestamp t) const {
  for (const Interval& iv : intervals_) {
    if (iv.Contains(t)) return iv.end;
  }
  return std::nullopt;
}

std::string IntervalSet::ToString() const {
  return "{" + JoinToString(intervals_, ", ") + "}";
}

}  // namespace expdb
