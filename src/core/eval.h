// Evaluation of expiration-time algebra expressions (paper Sec. 2).
//
// Evaluate(e, db, τ) materializes e against the unexpired portion of the
// database at time τ, assigning
//  * per-tuple expiration times by the operator rules (Eqs. 1–4, 8, 10),
//  * the expression expiration time texp(e) (Sec. 2.3, 2.6), and
//  * (optionally) exact Schrödinger validity intervals (Sec. 3.4).

#ifndef EXPDB_CORE_EVAL_H_
#define EXPDB_CORE_EVAL_H_

#include <vector>

#include "common/result.h"
#include "core/difference.h"
#include "core/expression.h"
#include "core/materialized_result.h"

namespace expdb {

/// Options controlling evaluation.
struct EvalOptions {
  /// How aggregation results receive expiration times (Sec. 2.6.1's three
  /// alternatives). The default is the paper's Table 1 optimization.
  AggregateExpirationMode aggregate_mode =
      AggregateExpirationMode::kContributingSet;
  /// When > 0, aggregate values are maintained with an absolute error
  /// bound instead of exactly (the paper's future-work extension):
  /// aggregation result tuples stay valid while the live aggregate is
  /// within ± this bound of the materialized value. Overrides
  /// aggregate_mode (uses the tolerance-aware replay).
  double aggregate_tolerance = 0.0;
  /// When true, compute exact validity interval sets (costs one extra
  /// change-point pass over aggregate partitions and difference criticals);
  /// when false, validity is the sound single interval [τ, texp(e)).
  bool compute_validity = false;
  /// When true (default), per-operator counters and latency spans feed
  /// the process-wide obs::MetricsRegistry / obs::TraceRecorder. Counter
  /// overhead is <5% (bench_obs_overhead, EXPERIMENTS.md); spans cost
  /// nothing unless tracing is enabled on the recorder.
  bool enable_metrics = true;
  /// Number of evaluation workers (docs/PERFORMANCE.md). 1 (the default)
  /// runs every operator on the calling thread — byte-for-byte the
  /// pre-parallel behavior. 0 sizes to the hardware; any other value is
  /// the worker count (the calling thread participates). Results are
  /// sets, so parallel evaluation is set-identical to serial — asserted
  /// by tests/core/parallel_eval_property_test.cc.
  size_t parallelism = 1;
  /// Morsel-size floor for parallel scans: an input smaller than twice
  /// this runs serially even when parallelism > 1 (scheduling a thread
  /// costs more than scanning a tiny relation). Tests lower it to force
  /// the parallel paths on small inputs.
  size_t parallel_min_morsel = 1024;
};

/// \brief Materializes `expr` at time `tau`.
Result<MaterializedResult> Evaluate(const ExpressionPtr& expr,
                                    const Database& db, Timestamp tau,
                                    const EvalOptions& options = {});

/// \brief Result of evaluating a root-level difference together with its
/// Theorem 3 helper entries (the priority-queue contents).
struct DifferenceEvalResult {
  MaterializedResult result;
  /// Critical tuples sorted by (appears_at, tuple) — ready to drive a
  /// patching priority queue.
  std::vector<DifferencePatchEntry> helper;
  /// |expτ(R) ∩ expτ(S)|: the paper's bound on helper storage.
  size_t common_count = 0;
  /// min(texp(R), texp(S)): when an *argument* of the difference becomes
  /// invalid. A patched view (Theorem 3) is maintenance-free until this
  /// instant — ∞ when both arguments are monotonic, hence the theorem's
  /// "the expression's expiration time is ∞".
  Timestamp children_texp = Timestamp::Infinity();
};

/// \brief Like Evaluate, for expressions whose root is −exp; additionally
/// returns the helper relation entries needed for Theorem 3 patching.
/// Fails with InvalidArgument if the root is not a difference.
Result<DifferenceEvalResult> EvaluateDifferenceRoot(
    const ExpressionPtr& expr, const Database& db, Timestamp tau,
    const EvalOptions& options = {});

}  // namespace expdb

#endif  // EXPDB_CORE_EVAL_H_
