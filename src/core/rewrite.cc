#include "core/rewrite.h"

#include <algorithm>

namespace expdb {

std::string RewriteReport::ToString() const {
  std::string out;
  for (const auto& [rule, count] : rule_applications) {
    if (!out.empty()) out += ", ";
    out += rule + " x" + std::to_string(count);
  }
  return out.empty() ? "(no rewrites)" : out;
}

namespace {

class Rewriter {
 public:
  Rewriter(const Database& db, RewriteReport* report)
      : db_(db), report_(report) {}

  Result<ExpressionPtr> Rewrite(const ExpressionPtr& e) {
    // Bottom-up: rewrite children first, then apply root rules to a
    // fixpoint (each rule strictly shrinks or restructures, so a small
    // bound suffices; the bound guards against rule cycles).
    ExpressionPtr node = e;
    EXPDB_ASSIGN_OR_RETURN(node, RewriteChildren(node));
    for (int round = 0; round < 8; ++round) {
      EXPDB_ASSIGN_OR_RETURN(ExpressionPtr next, ApplyRootRules(node));
      if (next == node) break;
      // A root rule may have created new rewrite opportunities below.
      EXPDB_ASSIGN_OR_RETURN(node, RewriteChildren(next));
    }
    return node;
  }

 private:
  void Count(const std::string& rule) {
    if (report_ != nullptr) ++report_->rule_applications[rule];
  }

  Result<ExpressionPtr> RewriteChildren(const ExpressionPtr& e) {
    ExpressionPtr left = e->left();
    ExpressionPtr right = e->right();
    bool changed = false;
    if (left != nullptr) {
      EXPDB_ASSIGN_OR_RETURN(ExpressionPtr nl, Rewrite(left));
      changed |= nl != left;
      left = nl;
    }
    if (right != nullptr) {
      EXPDB_ASSIGN_OR_RETURN(ExpressionPtr nr, Rewrite(right));
      changed |= nr != right;
      right = nr;
    }
    if (!changed) return e;
    return Rebuild(e, std::move(left), std::move(right));
  }

  static ExpressionPtr Rebuild(const ExpressionPtr& e, ExpressionPtr left,
                               ExpressionPtr right) {
    switch (e->kind()) {
      case ExprKind::kBase:
        return e;
      case ExprKind::kSelect:
        return Expression::MakeSelect(std::move(left), e->predicate());
      case ExprKind::kProject:
        return Expression::MakeProject(std::move(left), e->projection());
      case ExprKind::kProduct:
        return Expression::MakeProduct(std::move(left), std::move(right));
      case ExprKind::kUnion:
        return Expression::MakeUnion(std::move(left), std::move(right));
      case ExprKind::kJoin:
        return Expression::MakeJoin(std::move(left), std::move(right),
                                    e->predicate());
      case ExprKind::kIntersect:
        return Expression::MakeIntersect(std::move(left), std::move(right));
      case ExprKind::kDifference:
        return Expression::MakeDifference(std::move(left),
                                          std::move(right));
      case ExprKind::kAggregate:
        return Expression::MakeAggregate(std::move(left), e->group_by(),
                                         e->aggregate());
      case ExprKind::kSemiJoin:
        return Expression::MakeSemiJoin(std::move(left), std::move(right),
                                        e->predicate());
      case ExprKind::kAntiJoin:
        return Expression::MakeAntiJoin(std::move(left), std::move(right),
                                        e->predicate());
    }
    return e;
  }

  Result<ExpressionPtr> ApplyRootRules(const ExpressionPtr& e) {
    if (e->kind() == ExprKind::kSelect) return RewriteSelect(e);
    if (e->kind() == ExprKind::kProject) return RewriteProject(e);
    return e;
  }

  Result<ExpressionPtr> RewriteSelect(const ExpressionPtr& e) {
    const ExpressionPtr& child = e->left();
    const Predicate& p = e->predicate();
    switch (child->kind()) {
      case ExprKind::kSelect: {
        Count("merge-selects");
        return Expression::MakeSelect(child->left(),
                                      child->predicate().And(p));
      }
      case ExprKind::kJoin: {
        Count("select-into-join");
        return Expression::MakeJoin(child->left(), child->right(),
                                    child->predicate().And(p));
      }
      case ExprKind::kUnion:
      case ExprKind::kIntersect:
      case ExprKind::kDifference: {
        // σp(l op r) = σp(l) op σp(r); through −exp this shrinks the
        // critical set {t ∈ R ∩ S : texp_R > texp_S} to its p-satisfying
        // subset (the paper's Sec. 3.1 objective).
        Count(child->kind() == ExprKind::kDifference
                  ? "select-through-difference"
                  : "select-through-set-op");
        ExpressionPtr l = Expression::MakeSelect(child->left(), p);
        ExpressionPtr r = Expression::MakeSelect(child->right(), p);
        return Rebuild(child, std::move(l), std::move(r));
      }
      case ExprKind::kProject: {
        // σp(π_A(e')) = π_A(σ_{p∘A}(e')).
        std::map<size_t, size_t> mapping;
        for (size_t out = 0; out < child->projection().size(); ++out) {
          // If two output columns map from the same input column, either
          // remapping is equivalent; the first wins.
          mapping.emplace(out, child->projection()[out]);
        }
        auto remapped = p.RemapColumns(mapping);
        if (!remapped.ok()) return ExpressionPtr(e);  // references unmapped
        Count("select-through-project");
        return Expression::MakeProject(
            Expression::MakeSelect(child->left(), remapped.MoveValue()),
            child->projection());
      }
      case ExprKind::kAggregate: {
        // Valid only when p references grouping attributes exclusively:
        // then it removes whole partitions and commutes with aggexp.
        EXPDB_ASSIGN_OR_RETURN(Schema child_schema,
                               child->left()->InferSchema(db_));
        const size_t appended = child_schema.arity();
        std::set<size_t> group(child->group_by().begin(),
                               child->group_by().end());
        bool pushable = true;
        for (size_t col : p.ReferencedColumns()) {
          if (col >= appended || group.count(col) == 0) {
            pushable = false;
            break;
          }
        }
        if (!pushable) return ExpressionPtr(e);
        Count("select-through-aggregate");
        return Expression::MakeAggregate(
            Expression::MakeSelect(child->left(), p), child->group_by(),
            child->aggregate());
      }
      case ExprKind::kProduct: {
        // Split the ∧-spine into left-only / right-only / cross conjuncts
        // and form a join: σp(l × r) -> σ-pushed l ⋈_cross r.
        EXPDB_ASSIGN_OR_RETURN(Schema lschema,
                               child->left()->InferSchema(db_));
        const size_t n_left = lschema.arity();
        Predicate left_pred = Predicate::Literal(true);
        Predicate right_pred = Predicate::Literal(true);
        Predicate cross_pred = Predicate::Literal(true);
        bool have_left = false, have_right = false, have_cross = false;
        for (const Predicate& conjunct : p.TopLevelConjuncts()) {
          auto cols = conjunct.ReferencedColumns();
          const bool touches_left =
              std::any_of(cols.begin(), cols.end(),
                          [&](size_t c) { return c < n_left; });
          const bool touches_right =
              std::any_of(cols.begin(), cols.end(),
                          [&](size_t c) { return c >= n_left; });
          if (touches_left && !touches_right) {
            left_pred = have_left ? left_pred.And(conjunct) : conjunct;
            have_left = true;
          } else if (touches_right && !touches_left) {
            // Shift right-side conjuncts into the right child's frame.
            Predicate shifted = conjunct;
            std::map<size_t, size_t> mapping;
            for (size_t c : cols) mapping.emplace(c, c - n_left);
            auto remapped = conjunct.RemapColumns(mapping);
            if (remapped.ok()) {
              shifted = remapped.MoveValue();
              right_pred = have_right ? right_pred.And(shifted) : shifted;
              have_right = true;
            } else {
              cross_pred = have_cross ? cross_pred.And(conjunct) : conjunct;
              have_cross = true;
            }
          } else {
            cross_pred = have_cross ? cross_pred.And(conjunct) : conjunct;
            have_cross = true;
          }
        }
        if (!have_left && !have_right) {
          // Nothing pushable; still form a join so equality conjuncts can
          // take the hash path.
          Count("product-to-join");
          return Expression::MakeJoin(child->left(), child->right(), p);
        }
        Count("select-through-product");
        ExpressionPtr l = have_left ? Expression::MakeSelect(child->left(),
                                                             left_pred)
                                    : child->left();
        ExpressionPtr r = have_right
                              ? Expression::MakeSelect(child->right(),
                                                       right_pred)
                              : child->right();
        return Expression::MakeJoin(std::move(l), std::move(r), cross_pred);
      }
      default:
        return ExpressionPtr(e);
    }
  }

  Result<ExpressionPtr> RewriteProject(const ExpressionPtr& e) {
    const ExpressionPtr& child = e->left();
    if (child->kind() != ExprKind::kProject) return ExpressionPtr(e);
    Count("merge-projects");
    std::vector<size_t> composed;
    composed.reserve(e->projection().size());
    for (size_t out : e->projection()) {
      composed.push_back(child->projection()[out]);
    }
    return Expression::MakeProject(child->left(), std::move(composed));
  }

  const Database& db_;
  RewriteReport* report_;
};

}  // namespace

Result<ExpressionPtr> RewriteForIndependence(const ExpressionPtr& expr,
                                             const Database& db,
                                             RewriteReport* report) {
  if (expr == nullptr) return Status::InvalidArgument("null expression");
  // Validate once up front; rules assume a well-typed plan.
  EXPDB_RETURN_NOT_OK(expr->InferSchema(db).status());
  return Rewriter(db, report).Rewrite(expr);
}

}  // namespace expdb
