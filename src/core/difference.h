// Difference with expiration times (paper Sec. 2.6.2, 3.4.2).
//
// R −exp S = { r | r ∈ expτ(R) ∧ r ∉ expτ(S) }, with result tuples keeping
// texp_R. The operator is non-monotonic: a tuple t present in both R and S
// with texp_R(t) > texp_S(t) ("critical", case 3a of Table 2) must appear
// in the result when it expires from S, so the materialized result becomes
// invalid at min over critical t of texp_S(t) (the paper's τ_R).
//
// Note on Eq. (11): as printed it takes min{texp_R(t) | ...}, but the
// paper's own τ_R definition, Table 2 case (3a), and Theorem 2's proof all
// use texp_S(t) — the instant the tuple should re-appear. ExpDB implements
// the texp_S version.
//
// Note on Eq. (12): the printed validity formula removes the single coarse
// window [min texp_S, max texp_S). The exact invalid set is the union of
// per-tuple windows [texp_S(t), texp_R(t)) — each critical tuple is
// missing from the materialization exactly while it is expired in S but
// alive in R. ExpDB computes the exact union (a superset of the paper's
// validity), and exposes the coarse window too for the reproduction.

#ifndef EXPDB_CORE_DIFFERENCE_H_
#define EXPDB_CORE_DIFFERENCE_H_

#include <vector>

#include "common/timestamp.h"
#include "core/interval_set.h"
#include "relational/relation.h"

namespace expdb {

/// \brief One critical tuple of a difference: a member of the Theorem 3
/// helper relation R(R −exp S) together with the patch metadata.
struct DifferencePatchEntry {
  Tuple tuple;
  /// texp_S(t): when the tuple expires from S and must appear in the
  /// result (the helper relation's expiration time).
  Timestamp appears_at;
  /// texp_R(t): the expiration time the patched-in tuple carries.
  Timestamp expires_at;

  bool operator==(const DifferencePatchEntry&) const = default;
};

/// \brief Full lifetime analysis of e = R −exp S at time τ.
struct DifferenceAnalysis {
  /// The materialized result per Eq. (10) (schema = R's schema).
  Relation result;
  /// Critical tuples (Table 2 case 3a): t ∈ expτ(R) ∩ expτ(S) with
  /// texp_R(t) > texp_S(t), sorted by (appears_at, tuple). Non-critical
  /// common tuples are omitted: patching them in would insert an
  /// already-expired tuple, a no-op.
  std::vector<DifferencePatchEntry> critical;
  /// Number of common tuples |expτ(R) ∩ expτ(S)| — the paper's bound on
  /// the helper priority queue size.
  size_t common_count = 0;
  /// τ_R = min{texp_S(t) | t critical}; ∞ when there are no critical
  /// tuples. The materialized result is invalid from this instant on
  /// unless patched.
  Timestamp tau_r = Timestamp::Infinity();
  /// Exact invalid windows: ∪_t [texp_S(t), texp_R(t)) over critical t.
  IntervalSet invalid_windows;
  /// The paper's coarse Eq. (12) window [min texp_S, max texp_R) over
  /// critical tuples (empty when none). ExpDB uses texp_R as the upper
  /// bound (see header comment); always a superset interval of each exact
  /// window.
  IntervalSet coarse_invalid_window;
};

/// \brief Computes R −exp S with full lifetime analysis. `left` and
/// `right` must already be restricted to unexpired tuples (the evaluator
/// passes operator results, which are).
///
/// `workers` > 1 scans `left` in parallel morsels (probing `right`'s index
/// read-only) on the shared thread pool; `min_morsel` is the per-morsel
/// floor below which the scan stays serial. The analysis is deterministic
/// regardless of worker count.
DifferenceAnalysis AnalyzeDifference(const Relation& left,
                                     const Relation& right,
                                     size_t workers = 1,
                                     size_t min_morsel = 1024);

}  // namespace expdb

#endif  // EXPDB_CORE_DIFFERENCE_H_
