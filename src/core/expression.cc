#include "core/expression.h"

#include <algorithm>

#include "common/str_util.h"

namespace expdb {

std::string_view ExprKindToString(ExprKind kind) {
  switch (kind) {
    case ExprKind::kBase:
      return "base";
    case ExprKind::kSelect:
      return "select";
    case ExprKind::kProject:
      return "project";
    case ExprKind::kProduct:
      return "product";
    case ExprKind::kUnion:
      return "union";
    case ExprKind::kJoin:
      return "join";
    case ExprKind::kIntersect:
      return "intersect";
    case ExprKind::kDifference:
      return "difference";
    case ExprKind::kAggregate:
      return "aggregate";
    case ExprKind::kSemiJoin:
      return "semijoin";
    case ExprKind::kAntiJoin:
      return "antijoin";
  }
  return "?";
}

namespace {

std::shared_ptr<Expression> NewNode() {
  // Expression's constructor is private; allocate through a local subclass.
  struct Make : Expression {};
  auto node = std::make_shared<Make>();
  return node;
}

}  // namespace

bool Expression::IsMonotonic() const {
  switch (kind_) {
    case ExprKind::kDifference:
    case ExprKind::kAggregate:
    case ExprKind::kAntiJoin:
      return false;
    case ExprKind::kBase:
      return true;
    default:
      break;
  }
  if (left_ && !left_->IsMonotonic()) return false;
  if (right_ && !right_->IsMonotonic()) return false;
  return true;
}

Result<Schema> Expression::InferSchema(const Database& db) const {
  switch (kind_) {
    case ExprKind::kBase: {
      EXPDB_ASSIGN_OR_RETURN(const Relation* rel,
                             db.GetRelation(relation_name_));
      return rel->schema();
    }
    case ExprKind::kSelect: {
      EXPDB_ASSIGN_OR_RETURN(Schema child, left_->InferSchema(db));
      EXPDB_RETURN_NOT_OK(predicate_.Validate(child));
      return child;
    }
    case ExprKind::kProject: {
      EXPDB_ASSIGN_OR_RETURN(Schema child, left_->InferSchema(db));
      return child.Project(projection_);
    }
    case ExprKind::kProduct: {
      EXPDB_ASSIGN_OR_RETURN(Schema l, left_->InferSchema(db));
      EXPDB_ASSIGN_OR_RETURN(Schema r, right_->InferSchema(db));
      return l.Concat(r);
    }
    case ExprKind::kJoin: {
      EXPDB_ASSIGN_OR_RETURN(Schema l, left_->InferSchema(db));
      EXPDB_ASSIGN_OR_RETURN(Schema r, right_->InferSchema(db));
      Schema joined = l.Concat(r);
      EXPDB_RETURN_NOT_OK(predicate_.Validate(joined));
      return joined;
    }
    case ExprKind::kSemiJoin:
    case ExprKind::kAntiJoin: {
      // Output schema is the left input's; the predicate ranges over the
      // concatenation (as in the join these operators derive from).
      EXPDB_ASSIGN_OR_RETURN(Schema l, left_->InferSchema(db));
      EXPDB_ASSIGN_OR_RETURN(Schema r, right_->InferSchema(db));
      EXPDB_RETURN_NOT_OK(predicate_.Validate(l.Concat(r)));
      return l;
    }
    case ExprKind::kUnion:
    case ExprKind::kIntersect:
    case ExprKind::kDifference: {
      EXPDB_ASSIGN_OR_RETURN(Schema l, left_->InferSchema(db));
      EXPDB_ASSIGN_OR_RETURN(Schema r, right_->InferSchema(db));
      if (!l.UnionCompatibleWith(r)) {
        return Status::TypeError(
            std::string(ExprKindToString(kind_)) +
            " requires union-compatible inputs, got " + l.ToString() +
            " and " + r.ToString());
      }
      return l;
    }
    case ExprKind::kAggregate: {
      EXPDB_ASSIGN_OR_RETURN(Schema child, left_->InferSchema(db));
      for (size_t j : group_by_) {
        if (!child.IsValidIndex(j)) {
          return Status::OutOfRange("grouping attribute " +
                                    std::to_string(j + 1) +
                                    " beyond schema " + child.ToString());
        }
      }
      ValueType attr_type = ValueType::kInt64;
      if (aggregate_.kind != AggregateKind::kCount) {
        if (!child.IsValidIndex(aggregate_.attr)) {
          return Status::OutOfRange("aggregate attribute " +
                                    std::to_string(aggregate_.attr + 1) +
                                    " beyond schema " + child.ToString());
        }
        attr_type = child.attribute(aggregate_.attr).type;
        if ((aggregate_.kind == AggregateKind::kSum ||
             aggregate_.kind == AggregateKind::kAvg) &&
            attr_type == ValueType::kString) {
          return Status::TypeError(aggregate_.ToString() +
                                   " requires a numeric attribute");
        }
      }
      std::vector<Attribute> attrs = child.attributes();
      // Give the appended aggregate attribute a fresh name.
      std::string agg_name = aggregate_.ToString();
      auto taken = [&](const std::string& n) {
        return std::any_of(attrs.begin(), attrs.end(),
                           [&](const Attribute& a) { return a.name == n; });
      };
      int suffix = 2;
      std::string candidate = agg_name;
      while (taken(candidate)) {
        candidate = agg_name + "." + std::to_string(suffix++);
      }
      attrs.push_back({candidate, aggregate_.ResultType(attr_type)});
      return Schema(std::move(attrs));
    }
  }
  return Status::Internal("unknown expression kind");
}

std::set<std::string> Expression::BaseRelationNames() const {
  std::set<std::string> out;
  if (kind_ == ExprKind::kBase) {
    out.insert(relation_name_);
    return out;
  }
  if (left_) out.merge(left_->BaseRelationNames());
  if (right_) out.merge(right_->BaseRelationNames());
  return out;
}

size_t Expression::NodeCount() const {
  size_t n = 1;
  if (left_) n += left_->NodeCount();
  if (right_) n += right_->NodeCount();
  return n;
}

size_t Expression::Depth() const {
  size_t d = 0;
  if (left_) d = std::max(d, left_->Depth());
  if (right_) d = std::max(d, right_->Depth());
  return d + 1;
}

std::string Expression::ToString() const {
  auto indices = [](const std::vector<size_t>& xs) {
    std::vector<std::string> out;
    out.reserve(xs.size());
    for (size_t x : xs) out.push_back(std::to_string(x + 1));
    return JoinStrings(out, ",");
  };
  switch (kind_) {
    case ExprKind::kBase:
      return relation_name_;
    case ExprKind::kSelect:
      return "σ_{" + predicate_.ToString() + "}(" + left_->ToString() +
             ")";
    case ExprKind::kProject:
      return "π_{" + indices(projection_) + "}(" + left_->ToString() +
             ")";
    case ExprKind::kProduct:
      return "(" + left_->ToString() + " × " + right_->ToString() + ")";
    case ExprKind::kUnion:
      return "(" + left_->ToString() + " ∪ " + right_->ToString() + ")";
    case ExprKind::kJoin:
      return "(" + left_->ToString() + " ⋈_{" + predicate_.ToString() +
             "} " + right_->ToString() + ")";
    case ExprKind::kIntersect:
      return "(" + left_->ToString() + " ∩ " + right_->ToString() + ")";
    case ExprKind::kDifference:
      return "(" + left_->ToString() + " − " + right_->ToString() + ")";
    case ExprKind::kAggregate:
      return "agg_{{" + indices(group_by_) + "}," + aggregate_.ToString() +
             "}(" + left_->ToString() + ")";
    case ExprKind::kSemiJoin:
      return "(" + left_->ToString() + " ⋉_{" + predicate_.ToString() +
             "} " + right_->ToString() + ")";
    case ExprKind::kAntiJoin:
      return "(" + left_->ToString() + " ▷_{" + predicate_.ToString() +
             "} " + right_->ToString() + ")";
  }
  return "?";
}

ExpressionPtr Expression::MakeBase(std::string relation_name) {
  auto node = NewNode();
  node->kind_ = ExprKind::kBase;
  node->relation_name_ = std::move(relation_name);
  return node;
}

ExpressionPtr Expression::MakeSelect(ExpressionPtr child,
                                     Predicate predicate) {
  auto node = NewNode();
  node->kind_ = ExprKind::kSelect;
  node->left_ = std::move(child);
  node->predicate_ = std::move(predicate);
  return node;
}

ExpressionPtr Expression::MakeProject(ExpressionPtr child,
                                      std::vector<size_t> attrs) {
  auto node = NewNode();
  node->kind_ = ExprKind::kProject;
  node->left_ = std::move(child);
  node->projection_ = std::move(attrs);
  return node;
}

ExpressionPtr Expression::MakeProduct(ExpressionPtr left,
                                      ExpressionPtr right) {
  auto node = NewNode();
  node->kind_ = ExprKind::kProduct;
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  return node;
}

ExpressionPtr Expression::MakeUnion(ExpressionPtr left, ExpressionPtr right) {
  auto node = NewNode();
  node->kind_ = ExprKind::kUnion;
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  return node;
}

ExpressionPtr Expression::MakeJoin(ExpressionPtr left, ExpressionPtr right,
                                   Predicate predicate) {
  auto node = NewNode();
  node->kind_ = ExprKind::kJoin;
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  node->predicate_ = std::move(predicate);
  return node;
}

ExpressionPtr Expression::MakeIntersect(ExpressionPtr left,
                                        ExpressionPtr right) {
  auto node = NewNode();
  node->kind_ = ExprKind::kIntersect;
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  return node;
}

ExpressionPtr Expression::MakeDifference(ExpressionPtr left,
                                         ExpressionPtr right) {
  auto node = NewNode();
  node->kind_ = ExprKind::kDifference;
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  return node;
}

ExpressionPtr Expression::MakeSemiJoin(ExpressionPtr left,
                                       ExpressionPtr right,
                                       Predicate predicate) {
  auto node = NewNode();
  node->kind_ = ExprKind::kSemiJoin;
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  node->predicate_ = std::move(predicate);
  return node;
}

ExpressionPtr Expression::MakeAntiJoin(ExpressionPtr left,
                                       ExpressionPtr right,
                                       Predicate predicate) {
  auto node = NewNode();
  node->kind_ = ExprKind::kAntiJoin;
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  node->predicate_ = std::move(predicate);
  return node;
}

ExpressionPtr Expression::MakeAggregate(ExpressionPtr child,
                                        std::vector<size_t> group_by,
                                        AggregateFunction f) {
  auto node = NewNode();
  node->kind_ = ExprKind::kAggregate;
  node->left_ = std::move(child);
  node->group_by_ = std::move(group_by);
  node->aggregate_ = f;
  return node;
}

}  // namespace expdb
