#include "core/eval.h"

#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace expdb {

namespace {

/// Indexed by ExprKind. Keep in sync with core/expression.h.
constexpr const char* kOpMetricNames[] = {
    "base",      "select",    "project",   "product",
    "union",     "join",      "intersect", "difference",
    "aggregate", "semi_join", "anti_join"};
constexpr const char* kOpSpanNames[] = {
    "eval.base",      "eval.select",    "eval.project",   "eval.product",
    "eval.union",     "eval.join",      "eval.intersect", "eval.difference",
    "eval.aggregate", "eval.semi_join", "eval.anti_join"};
constexpr size_t kNumOpKinds =
    sizeof(kOpMetricNames) / sizeof(kOpMetricNames[0]);

/// Registry handles for operator evaluation, resolved once per process so
/// the per-node cost is bare atomic increments.
struct EvalMetricSet {
  obs::Counter* evaluations;
  obs::Counter* operators;
  obs::Counter* tuples_out;
  obs::Counter* per_op[kNumOpKinds];
  obs::Histogram* latency;

  static const EvalMetricSet& Get() {
    static const EvalMetricSet* set = [] {
      auto* s = new EvalMetricSet();
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      s->evaluations = r.GetCounter("expdb_eval_evaluations_total",
                                    "Root-level expression evaluations");
      s->operators = r.GetCounter("expdb_eval_operators_total",
                                  "Operator nodes evaluated (all kinds)");
      s->tuples_out = r.GetCounter("expdb_eval_tuples_out_total",
                                   "Tuples produced by operator nodes");
      for (size_t i = 0; i < kNumOpKinds; ++i) {
        s->per_op[i] =
            r.GetCounter("expdb_eval_op_" + std::string(kOpMetricNames[i]) +
                             "_total",
                         "Evaluations of this operator kind");
      }
      s->latency = r.GetHistogram("expdb_eval_latency_ns",
                                  "Root evaluation wall time (ns)");
      return s;
    }();
    return *set;
  }
};

/// Match machinery shared by ⋉exp and ▷exp: for a left tuple, finds
/// whether any right tuple satisfies the (concatenated-frame) predicate,
/// and the maximum expiration time among the matches. Uses a hash table
/// over the predicate's cross-side equality columns when available.
class RightMatcher {
 public:
  RightMatcher(const Relation& right, const Predicate& predicate,
               size_t n_left)
      : predicate_(predicate) {
    for (auto [a, b] : predicate.TopLevelEqualities()) {
      if (a < n_left && b >= n_left) {
        lcols_.push_back(a);
        rcols_.push_back(b - n_left);
      } else if (b < n_left && a >= n_left) {
        lcols_.push_back(b);
        rcols_.push_back(a - n_left);
      }
    }
    right.ForEach([&](const Tuple& rt, Timestamp rtexp) {
      if (lcols_.empty()) {
        all_.emplace_back(&rt, rtexp);
      } else {
        table_[rt.Project(rcols_)].emplace_back(&rt, rtexp);
      }
    });
  }

  /// Max texp over right tuples matching `lt`; nullopt when none match.
  std::optional<Timestamp> MaxMatchTexp(const Tuple& lt) const {
    const std::vector<std::pair<const Tuple*, Timestamp>>* candidates;
    std::optional<Tuple> key;
    if (lcols_.empty()) {
      candidates = &all_;
    } else {
      key = lt.Project(lcols_);
      auto it = table_.find(*key);
      if (it == table_.end()) return std::nullopt;
      candidates = &it->second;
    }
    std::optional<Timestamp> best;
    for (const auto& [rt, rtexp] : *candidates) {
      if (!predicate_.Evaluate(lt.Concat(*rt))) continue;
      if (!best || rtexp > *best) best = rtexp;
    }
    return best;
  }

 private:
  const Predicate& predicate_;
  std::vector<size_t> lcols_, rcols_;
  std::vector<std::pair<const Tuple*, Timestamp>> all_;
  std::unordered_map<Tuple, std::vector<std::pair<const Tuple*, Timestamp>>>
      table_;
};

class Evaluator {
 public:
  Evaluator(const Database& db, Timestamp tau, const EvalOptions& options)
      : db_(db), tau_(tau), options_(options) {}

  Result<MaterializedResult> Eval(const Expression& e) {
    if (!options_.enable_metrics) return EvalNode(e);
    const size_t k = static_cast<size_t>(e.kind());
    const EvalMetricSet& m = EvalMetricSet::Get();
    m.operators->Increment();
    if (k < kNumOpKinds) m.per_op[k]->Increment();
    obs::ScopedSpan span(k < kNumOpKinds ? kOpSpanNames[k] : "eval.op");
    Result<MaterializedResult> r = EvalNode(e);
    if (r.ok()) m.tuples_out->Increment(r.value().relation.size());
    return r;
  }

  Result<MaterializedResult> EvalNode(const Expression& e) {
    switch (e.kind()) {
      case ExprKind::kBase:
        return EvalBase(e);
      case ExprKind::kSelect:
        return EvalSelect(e);
      case ExprKind::kProject:
        return EvalProject(e);
      case ExprKind::kProduct:
        return EvalProduct(e);
      case ExprKind::kUnion:
        return EvalUnion(e);
      case ExprKind::kJoin:
        return EvalJoin(e);
      case ExprKind::kIntersect:
        return EvalIntersect(e);
      case ExprKind::kDifference: {
        EXPDB_ASSIGN_OR_RETURN(DifferenceEvalResult diff, EvalDifference(e));
        return std::move(diff.result);
      }
      case ExprKind::kAggregate:
        return EvalAggregate(e);
      case ExprKind::kSemiJoin:
        return EvalSemiJoin(e);
      case ExprKind::kAntiJoin: {
        EXPDB_ASSIGN_OR_RETURN(DifferenceEvalResult anti, EvalAntiJoin(e));
        return std::move(anti.result);
      }
    }
    return Status::Internal("unknown expression kind");
  }

  Result<DifferenceEvalResult> EvalDifference(const Expression& e) {
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult l, Eval(*e.left()));
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult r, Eval(*e.right()));
    if (!l.relation.schema().UnionCompatibleWith(r.relation.schema())) {
      return Status::TypeError(
          "difference requires union-compatible inputs, got " +
          l.relation.schema().ToString() + " and " +
          r.relation.schema().ToString());
    }
    DifferenceAnalysis analysis = AnalyzeDifference(l.relation, r.relation);

    DifferenceEvalResult out;
    out.result.relation = std::move(analysis.result);
    out.result.materialized_at = tau_;
    // Eq. (11) with the texp_S correction (see difference.h): the
    // expression dies when either argument dies or the first critical
    // tuple should re-appear.
    out.result.texp =
        Timestamp::Min({l.texp, r.texp, analysis.tau_r});
    if (options_.compute_validity) {
      IntervalSet v = l.validity.Intersect(r.validity);
      for (const Interval& iv : analysis.invalid_windows.intervals()) {
        v.Subtract(iv);
      }
      out.result.validity = std::move(v);
    } else {
      out.result.validity = IntervalSet(tau_, out.result.texp);
    }
    out.helper = std::move(analysis.critical);
    out.common_count = analysis.common_count;
    out.children_texp = Timestamp::Min(l.texp, r.texp);
    return out;
  }

  /// ▷exp: the difference analysis generalized from tuple equality to an
  /// arbitrary match predicate. A left tuple with surviving matches is
  /// suppressed; it must re-appear when its *last* match expires, so the
  /// critical window is [max matching texp_S, texp_R).
  Result<DifferenceEvalResult> EvalAntiJoin(const Expression& e) {
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult l, Eval(*e.left()));
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult r, Eval(*e.right()));
    const size_t n_left = l.relation.schema().arity();
    EXPDB_RETURN_NOT_OK(e.predicate().Validate(
        l.relation.schema().Concat(r.relation.schema())));
    RightMatcher matcher(r.relation, e.predicate(), n_left);

    DifferenceEvalResult out;
    out.result.relation = Relation(l.relation.schema());
    Timestamp tau_r = Timestamp::Infinity();
    IntervalSet invalid;
    l.relation.ForEach([&](const Tuple& lt, Timestamp ltexp) {
      std::optional<Timestamp> last_match = matcher.MaxMatchTexp(lt);
      if (!last_match.has_value()) {
        out.result.relation.InsertUnchecked(lt, ltexp);
        return;
      }
      ++out.common_count;
      if (ltexp > *last_match) {
        out.helper.push_back({lt, *last_match, ltexp});
        invalid.Add(*last_match, ltexp);
        tau_r = Timestamp::Min(tau_r, *last_match);
      }
    });
    std::sort(out.helper.begin(), out.helper.end(),
              [](const DifferencePatchEntry& a,
                 const DifferencePatchEntry& b) {
                if (a.appears_at != b.appears_at) {
                  return a.appears_at < b.appears_at;
                }
                return a.tuple < b.tuple;
              });

    out.result.materialized_at = tau_;
    out.result.texp = Timestamp::Min({l.texp, r.texp, tau_r});
    if (options_.compute_validity) {
      IntervalSet v = l.validity.Intersect(r.validity);
      for (const Interval& iv : invalid.intervals()) v.Subtract(iv);
      out.result.validity = std::move(v);
    } else {
      out.result.validity = IntervalSet(tau_, out.result.texp);
    }
    out.children_texp = Timestamp::Min(l.texp, r.texp);
    return out;
  }

 private:
  Result<MaterializedResult> EvalBase(const Expression& e) {
    EXPDB_ASSIGN_OR_RETURN(const Relation* rel,
                           db_.GetRelation(e.relation_name()));
    MaterializedResult out;
    out.relation = rel->UnexpiredAt(tau_);
    return Monotonic(std::move(out));
  }

  Result<MaterializedResult> EvalSelect(const Expression& e) {
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult child, Eval(*e.left()));
    EXPDB_RETURN_NOT_OK(e.predicate().Validate(child.relation.schema()));
    MaterializedResult out;
    out.relation = Relation(child.relation.schema());
    child.relation.ForEach([&](const Tuple& t, Timestamp texp) {
      // Eq. (1): result tuples retain their expiration times.
      if (e.predicate().Evaluate(t)) out.relation.InsertUnchecked(t, texp);
    });
    return Inherit(std::move(out), child);
  }

  Result<MaterializedResult> EvalProject(const Expression& e) {
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult child, Eval(*e.left()));
    EXPDB_ASSIGN_OR_RETURN(Schema schema,
                           child.relation.schema().Project(e.projection()));
    MaterializedResult out;
    out.relation = Relation(std::move(schema));
    child.relation.ForEach([&](const Tuple& t, Timestamp texp) {
      // Eq. (3): a tuple gets the max expiration time of its duplicates.
      out.relation.MergeMaxUnchecked(t.Project(e.projection()), texp);
    });
    return Inherit(std::move(out), child);
  }

  Result<MaterializedResult> EvalProduct(const Expression& e) {
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult l, Eval(*e.left()));
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult r, Eval(*e.right()));
    MaterializedResult out;
    out.relation = Relation(l.relation.schema().Concat(r.relation.schema()));
    l.relation.ForEach([&](const Tuple& lt, Timestamp ltexp) {
      r.relation.ForEach([&](const Tuple& rt, Timestamp rtexp) {
        // Eq. (2): min lifetime of the participating tuples.
        out.relation.InsertUnchecked(lt.Concat(rt),
                                     Timestamp::Min(ltexp, rtexp));
      });
    });
    return Combine(std::move(out), l, r);
  }

  Result<MaterializedResult> EvalUnion(const Expression& e) {
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult l, Eval(*e.left()));
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult r, Eval(*e.right()));
    if (!l.relation.schema().UnionCompatibleWith(r.relation.schema())) {
      return Status::TypeError(
          "union requires union-compatible inputs, got " +
          l.relation.schema().ToString() + " and " +
          r.relation.schema().ToString());
    }
    MaterializedResult out;
    out.relation = std::move(l.relation);
    // Eq. (4): tuples in both sides get the max of the two texps.
    r.relation.ForEach([&](const Tuple& t, Timestamp texp) {
      out.relation.MergeMaxUnchecked(t, texp);
    });
    return Combine(std::move(out), l, r);
  }

  Result<MaterializedResult> EvalJoin(const Expression& e) {
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult l, Eval(*e.left()));
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult r, Eval(*e.right()));
    const Schema joined =
        l.relation.schema().Concat(r.relation.schema());
    EXPDB_RETURN_NOT_OK(e.predicate().Validate(joined));

    MaterializedResult out;
    out.relation = Relation(joined);
    const size_t n_left = l.relation.schema().arity();

    // Hash-join fast path on top-level cross-side equalities; semantics
    // coincide with the paper's rewrite σ_{p'}(R ×exp S) because the full
    // predicate is re-checked on every candidate pair.
    std::vector<size_t> lcols, rcols;
    for (auto [a, b] : e.predicate().TopLevelEqualities()) {
      if (a < n_left && b >= n_left) {
        lcols.push_back(a);
        rcols.push_back(b - n_left);
      } else if (b < n_left && a >= n_left) {
        lcols.push_back(b);
        rcols.push_back(a - n_left);
      }
    }

    auto emit = [&](const Tuple& lt, Timestamp ltexp, const Tuple& rt,
                    Timestamp rtexp) {
      Tuple joined_tuple = lt.Concat(rt);
      if (e.predicate().Evaluate(joined_tuple)) {
        out.relation.InsertUnchecked(std::move(joined_tuple),
                                     Timestamp::Min(ltexp, rtexp));
      }
    };

    if (lcols.empty()) {
      l.relation.ForEach([&](const Tuple& lt, Timestamp ltexp) {
        r.relation.ForEach([&](const Tuple& rt, Timestamp rtexp) {
          emit(lt, ltexp, rt, rtexp);
        });
      });
    } else {
      std::unordered_map<Tuple, std::vector<std::pair<const Tuple*, Timestamp>>>
          table;
      r.relation.ForEach([&](const Tuple& rt, Timestamp rtexp) {
        table[rt.Project(rcols)].emplace_back(&rt, rtexp);
      });
      l.relation.ForEach([&](const Tuple& lt, Timestamp ltexp) {
        auto it = table.find(lt.Project(lcols));
        if (it == table.end()) return;
        for (const auto& [rt, rtexp] : it->second) {
          emit(lt, ltexp, *rt, rtexp);
        }
      });
    }
    return Combine(std::move(out), l, r);
  }

  Result<MaterializedResult> EvalIntersect(const Expression& e) {
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult l, Eval(*e.left()));
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult r, Eval(*e.right()));
    if (!l.relation.schema().UnionCompatibleWith(r.relation.schema())) {
      return Status::TypeError(
          "intersection requires union-compatible inputs, got " +
          l.relation.schema().ToString() + " and " +
          r.relation.schema().ToString());
    }
    MaterializedResult out;
    out.relation = Relation(l.relation.schema());
    l.relation.ForEach([&](const Tuple& t, Timestamp ltexp) {
      auto rtexp = r.relation.GetTexp(t);
      // Eq. (6): minima of the expiration times of the participating
      // tuples (inherited from the inner ×exp of the rewrite).
      if (rtexp.has_value()) {
        out.relation.InsertUnchecked(t, Timestamp::Min(ltexp, *rtexp));
      }
    });
    return Combine(std::move(out), l, r);
  }

  /// ⋉exp: π_{R}(R ⋈exp_p S) with the derived expiration min(texp_R(r),
  /// max{texp_S(s) | s matches r}) — the projection's max-of-duplicates
  /// over the join's min-of-pairs. Monotonic.
  Result<MaterializedResult> EvalSemiJoin(const Expression& e) {
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult l, Eval(*e.left()));
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult r, Eval(*e.right()));
    const size_t n_left = l.relation.schema().arity();
    EXPDB_RETURN_NOT_OK(e.predicate().Validate(
        l.relation.schema().Concat(r.relation.schema())));
    RightMatcher matcher(r.relation, e.predicate(), n_left);

    MaterializedResult out;
    out.relation = Relation(l.relation.schema());
    l.relation.ForEach([&](const Tuple& lt, Timestamp ltexp) {
      std::optional<Timestamp> last_match = matcher.MaxMatchTexp(lt);
      if (last_match.has_value()) {
        out.relation.InsertUnchecked(lt,
                                     Timestamp::Min(ltexp, *last_match));
      }
    });
    return Combine(std::move(out), l, r);
  }

  Result<MaterializedResult> EvalAggregate(const Expression& e) {
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult child, Eval(*e.left()));
    EXPDB_ASSIGN_OR_RETURN(Schema schema, e.InferSchema(db_));
    const AggregateFunction& f = e.aggregate();
    for (size_t j : e.group_by()) {
      if (!child.relation.schema().IsValidIndex(j)) {
        return Status::OutOfRange("grouping attribute out of range");
      }
    }

    // Stable storage for partition entries: tuples must not move while
    // PartitionEntry pointers reference them.
    std::vector<std::pair<Tuple, Timestamp>> entries =
        child.relation.SortedEntries();

    // φexp (Eq. 7): stable partitioning by equality on the grouping
    // attributes (SQL GROUP BY).
    std::unordered_map<Tuple, std::vector<PartitionEntry>> partitions;
    for (const auto& [tuple, texp] : entries) {
      partitions[tuple.Project(e.group_by())].push_back({&tuple, texp});
    }

    MaterializedResult out;
    out.relation = Relation(std::move(schema));
    Timestamp texp_e = child.texp;
    IntervalSet validity = child.validity;

    for (const auto& [key, partition] : partitions) {
      PartitionAnalysis analysis;
      if (options_.aggregate_tolerance > 0) {
        EXPDB_ASSIGN_OR_RETURN(
            analysis, AnalyzeApproxPartition(partition, f,
                                             options_.aggregate_tolerance));
      } else {
        EXPDB_ASSIGN_OR_RETURN(
            analysis,
            AnalyzePartition(partition, f, options_.aggregate_mode));
      }
      for (const PartitionEntry& entry : partition) {
        // Eq. (8)/(9) with the source-tuple cap (see aggregate.h): the
        // result tuple dies with its source tuple or when the partition's
        // aggregate value changes, whichever is earlier.
        out.relation.InsertUnchecked(
            entry.tuple->Append(analysis.value),
            Timestamp::Min(entry.texp, analysis.change_cap));
      }
      if (analysis.invalidates_expression) {
        texp_e = Timestamp::Min(texp_e, analysis.change_cap);
        if (options_.compute_validity) {
          // The partition's contribution is wrong from the change until
          // the partition has fully expired; afterwards both the
          // materialization and recomputation are empty for it.
          validity.Subtract(analysis.change_cap, analysis.death);
        }
      }
    }

    out.texp = texp_e;
    out.validity = options_.compute_validity
                       ? std::move(validity)
                       : IntervalSet(tau_, texp_e);
    out.materialized_at = tau_;
    return out;
  }

  // --- texp(e) / validity composition helpers -----------------------------

  /// Monotonic leaf: texp(e) = ∞, valid from τ on.
  MaterializedResult Monotonic(MaterializedResult out) {
    out.materialized_at = tau_;
    out.texp = Timestamp::Infinity();
    out.validity = IntervalSet::From(tau_);
    return out;
  }

  /// Unary monotonic operator: texp and validity pass through (Sec. 2.3).
  MaterializedResult Inherit(MaterializedResult out,
                             const MaterializedResult& child) {
    out.materialized_at = tau_;
    out.texp = child.texp;
    out.validity = options_.compute_validity ? child.validity
                                             : IntervalSet(tau_, out.texp);
    return out;
  }

  /// Binary monotonic operator: texp(e) = min of the arguments' texps
  /// (Sec. 2.3); validity is the intersection.
  MaterializedResult Combine(MaterializedResult out,
                             const MaterializedResult& l,
                             const MaterializedResult& r) {
    out.materialized_at = tau_;
    out.texp = Timestamp::Min(l.texp, r.texp);
    out.validity = options_.compute_validity
                       ? l.validity.Intersect(r.validity)
                       : IntervalSet(tau_, out.texp);
    return out;
  }

  const Database& db_;
  Timestamp tau_;
  EvalOptions options_;
};

}  // namespace

Result<MaterializedResult> Evaluate(const ExpressionPtr& expr,
                                    const Database& db, Timestamp tau,
                                    const EvalOptions& options) {
  if (expr == nullptr) {
    return Status::InvalidArgument("null expression");
  }
  if (!options.enable_metrics) {
    return Evaluator(db, tau, options).Eval(*expr);
  }
  const EvalMetricSet& m = EvalMetricSet::Get();
  m.evaluations->Increment();
  obs::ScopedSpan span("eval.root", m.latency);
  return Evaluator(db, tau, options).Eval(*expr);
}

Result<DifferenceEvalResult> EvaluateDifferenceRoot(
    const ExpressionPtr& expr, const Database& db, Timestamp tau,
    const EvalOptions& options) {
  if (expr == nullptr || (expr->kind() != ExprKind::kDifference &&
                          expr->kind() != ExprKind::kAntiJoin)) {
    return Status::InvalidArgument(
        "EvaluateDifferenceRoot requires a difference or anti-join root");
  }
  auto eval_root = [&]() -> Result<DifferenceEvalResult> {
    Evaluator evaluator(db, tau, options);
    if (expr->kind() == ExprKind::kAntiJoin) {
      return evaluator.EvalAntiJoin(*expr);
    }
    return evaluator.EvalDifference(*expr);
  };
  if (!options.enable_metrics) return eval_root();
  const size_t k = static_cast<size_t>(expr->kind());
  const EvalMetricSet& m = EvalMetricSet::Get();
  m.evaluations->Increment();
  m.operators->Increment();
  if (k < kNumOpKinds) m.per_op[k]->Increment();
  obs::ScopedSpan span("eval.root", m.latency);
  Result<DifferenceEvalResult> r = eval_root();
  if (r.ok()) m.tuples_out->Increment(r.value().result.relation.size());
  return r;
}

}  // namespace expdb
