// IntervalSet: a set of disjoint half-open time intervals [start, end).
//
// Used for the paper's "Schrödinger's cat semantics" (Sec. 3.3–3.4): a
// materialized expression is associated not with a single expiration time
// but with the set of time intervals during which it is valid. Queries
// issued inside a valid interval are answered from the materialization
// without recomputation; queries in a gap may be moved backward/forward in
// time or trigger recomputation.

#ifndef EXPDB_CORE_INTERVAL_SET_H_
#define EXPDB_CORE_INTERVAL_SET_H_

#include <optional>
#include <string>
#include <vector>

#include "common/timestamp.h"

namespace expdb {

/// \brief One half-open interval [start, end); end may be infinity.
struct Interval {
  Timestamp start;
  Timestamp end;

  bool Contains(Timestamp t) const { return start <= t && t < end; }
  bool Empty() const { return start >= end; }
  bool operator==(const Interval& other) const = default;
  std::string ToString() const;
};

/// \brief A normalized (sorted, disjoint, gap-separated) set of intervals.
class IntervalSet {
 public:
  /// The empty set.
  IntervalSet() = default;

  /// The set containing exactly [start, end).
  IntervalSet(Timestamp start, Timestamp end);

  /// \brief [t, ∞) — the validity of a monotonic expression materialized
  /// at time t.
  static IntervalSet From(Timestamp t) {
    return IntervalSet(t, Timestamp::Infinity());
  }

  /// \brief The whole axis [0, ∞).
  static IntervalSet All() { return From(Timestamp::Zero()); }

  bool IsEmpty() const { return intervals_.empty(); }
  size_t interval_count() const { return intervals_.size(); }
  const std::vector<Interval>& intervals() const { return intervals_; }

  /// \brief True iff t lies inside some interval.
  bool Contains(Timestamp t) const;

  /// \brief Adds [start, end), merging adjacent/overlapping intervals.
  void Add(Timestamp start, Timestamp end);
  void Add(const Interval& iv) { Add(iv.start, iv.end); }

  /// \brief Removes [start, end) from the set.
  void Subtract(Timestamp start, Timestamp end);
  void Subtract(const Interval& iv) { Subtract(iv.start, iv.end); }

  /// \brief Set union.
  IntervalSet Union(const IntervalSet& other) const;

  /// \brief Set intersection. Validity of an expression with several
  /// sub-expressions is the intersection of their validity sets.
  IntervalSet Intersect(const IntervalSet& other) const;

  /// \brief Complement within [within_start, ∞).
  IntervalSet ComplementFrom(Timestamp within_start) const;

  /// \brief Latest valid time strictly before t, if any — the paper's
  /// "move the query backward in time (returning a slightly outdated
  /// result)".
  std::optional<Timestamp> LastValidBefore(Timestamp t) const;

  /// \brief Earliest valid time >= t, if any — the paper's "move the query
  /// forward in time (delaying the query)".
  std::optional<Timestamp> FirstValidAtOrAfter(Timestamp t) const;

  /// \brief The end of the interval containing t (i.e. the first future
  /// instant at which validity is lost), or nullopt if t is not contained.
  std::optional<Timestamp> ValidUntil(Timestamp t) const;

  bool operator==(const IntervalSet& other) const = default;

  /// Renders "{[a, b), [c, inf)}".
  std::string ToString() const;

 private:
  // Invariant: sorted by start; strictly disjoint with non-zero gaps
  // (adjacent intervals are merged); no empty intervals.
  std::vector<Interval> intervals_;
};

}  // namespace expdb

#endif  // EXPDB_CORE_INTERVAL_SET_H_
