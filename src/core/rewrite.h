// Algebraic rewriting to postpone recomputation (paper Sec. 3.1).
//
// "The idea is to use algebraic equivalences to rewrite query plans; the
// objective is to reduce the set {t | t ∈ R ∧ t ∈ S ∧ texp_R(t) >
// texp_S(t)}, which causes recomputations."
//
// Every rule preserves the materialized contents *and* the per-tuple
// expiration times at every instant; what changes is the expression-level
// expiration time texp(e), which can only grow (the rewritten plan stays
// independently maintainable at least as long — property-tested). The
// implemented equivalences:
//
//  * merge-selects           σp(σq(e))            -> σ(p ∧ q)(e)
//  * select-into-join        σp(l ⋈q r)           -> l ⋈(q ∧ p) r
//  * select-through-set-op   σp(l ∪/∩/− r)        -> σp(l) ∪/∩/− σp(r)
//      (through −, this shrinks the critical set directly)
//  * select-through-project  σp(π_A(e))           -> π_A(σ_{p∘A}(e))
//  * select-through-aggregate σp(agg_{G,f}(e))    -> agg_{G,f}(σp(e))
//      when p references only grouping attributes: whole partitions are
//      removed, so surviving partitions keep their values, caps, and
//      change times — and texp(e) is the min over fewer partitions
//  * product-to-join         σp(l × r)            -> σ_rest(l ⋈pX r) with
//      single-side conjuncts of p pushed into l and r first
//  * merge-projects          π_A(π_B(e))          -> π_{B∘A}(e)

#ifndef EXPDB_CORE_REWRITE_H_
#define EXPDB_CORE_REWRITE_H_

#include <map>
#include <string>

#include "core/expression.h"

namespace expdb {

/// \brief Which rules fired, and how often.
struct RewriteReport {
  std::map<std::string, size_t> rule_applications;

  size_t total() const {
    size_t n = 0;
    for (const auto& [rule, count] : rule_applications) n += count;
    return n;
  }
  std::string ToString() const;
};

/// \brief Rewrites `expr` bottom-up to a fixpoint (bounded), applying the
/// independence-extending equivalences above. `db` supplies schemas for
/// validity checks. Returns the (possibly identical) rewritten plan.
Result<ExpressionPtr> RewriteForIndependence(const ExpressionPtr& expr,
                                             const Database& db,
                                             RewriteReport* report = nullptr);

}  // namespace expdb

#endif  // EXPDB_CORE_REWRITE_H_
