// Expression: the AST of the expiration-time-aware relational algebra
// (paper Sec. 2.3–2.6).
//
// Primitive operators: σexp (select), πexp (project), ×exp (product),
// ∪exp (union), −exp (difference), aggexp (aggregation). Derived
// operators with native nodes: ⋈exp (join, Eq. 5) and ∩exp (intersection,
// Eq. 6); the evaluator implements them with hash algorithms whose
// semantics coincide with the paper's rewrites (tested).
//
// Expressions are immutable and shared; building them is infallible and
// schema/validity checking happens against a Database via InferSchema (also
// performed by the evaluator).

#ifndef EXPDB_CORE_EXPRESSION_H_
#define EXPDB_CORE_EXPRESSION_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/aggregate.h"
#include "core/predicate.h"
#include "relational/database.h"

namespace expdb {

class Expression;
using ExpressionPtr = std::shared_ptr<const Expression>;

/// The operator at an expression node.
enum class ExprKind {
  kBase,        ///< A named base relation.
  kSelect,      ///< σexp_p — Eq. (1)
  kProject,     ///< πexp_{j1..jn} — Eq. (3)
  kProduct,     ///< ×exp — Eq. (2)
  kUnion,       ///< ∪exp — Eq. (4)
  kJoin,        ///< ⋈exp_p — Eq. (5), derived
  kIntersect,   ///< ∩exp — Eq. (6), derived
  kDifference,  ///< −exp — Eq. (10), non-monotonic
  kAggregate,   ///< aggexp — Eq. (8), non-monotonic
  kSemiJoin,    ///< ⋉exp — derived: π_R(R ⋈exp_p S); monotonic
  kAntiJoin,    ///< ▷exp — generalized −exp by predicate; non-monotonic
};

std::string_view ExprKindToString(ExprKind kind);

/// \brief An immutable node of an algebra expression tree.
class Expression : public std::enable_shared_from_this<Expression> {
 public:
  ExprKind kind() const { return kind_; }

  /// Base relation name (kBase only).
  const std::string& relation_name() const { return relation_name_; }
  /// Left/only child (null for kBase).
  const ExpressionPtr& left() const { return left_; }
  /// Right child (binary operators only).
  const ExpressionPtr& right() const { return right_; }
  /// Selection/join predicate (kSelect, kJoin).
  const Predicate& predicate() const { return predicate_; }
  /// Projection attribute list, 0-based (kProject).
  const std::vector<size_t>& projection() const { return projection_; }
  /// Grouping attributes j1..jn, 0-based (kAggregate).
  const std::vector<size_t>& group_by() const { return group_by_; }
  /// Aggregate function f (kAggregate).
  const AggregateFunction& aggregate() const { return aggregate_; }

  /// \brief True iff the expression consists solely of the monotonic
  /// operators (1)–(6); such expressions never require recomputation
  /// (Theorem 1) and have texp(e) = ∞.
  bool IsMonotonic() const;

  /// \brief Output schema given the base relations in `db`; also validates
  /// predicates, projections, union compatibility, and aggregate inputs.
  Result<Schema> InferSchema(const Database& db) const;

  /// \brief Names of all base relations referenced by this expression.
  std::set<std::string> BaseRelationNames() const;

  /// Number of nodes in the tree.
  size_t NodeCount() const;

  /// Height of the tree (a single base relation has depth 1).
  size_t Depth() const;

  /// Algebra notation, e.g. "π_{2}(Pol ⋈_{$1 = $3} El)".
  std::string ToString() const;

  // Factory functions (see also the expdb::algebra convenience namespace).
  static ExpressionPtr MakeBase(std::string relation_name);
  static ExpressionPtr MakeSelect(ExpressionPtr child, Predicate predicate);
  static ExpressionPtr MakeProject(ExpressionPtr child,
                                   std::vector<size_t> attrs);
  static ExpressionPtr MakeProduct(ExpressionPtr left, ExpressionPtr right);
  static ExpressionPtr MakeUnion(ExpressionPtr left, ExpressionPtr right);
  static ExpressionPtr MakeJoin(ExpressionPtr left, ExpressionPtr right,
                                Predicate predicate);
  static ExpressionPtr MakeIntersect(ExpressionPtr left,
                                     ExpressionPtr right);
  static ExpressionPtr MakeDifference(ExpressionPtr left,
                                      ExpressionPtr right);
  static ExpressionPtr MakeAggregate(ExpressionPtr child,
                                     std::vector<size_t> group_by,
                                     AggregateFunction f);
  static ExpressionPtr MakeSemiJoin(ExpressionPtr left, ExpressionPtr right,
                                    Predicate predicate);
  static ExpressionPtr MakeAntiJoin(ExpressionPtr left, ExpressionPtr right,
                                    Predicate predicate);

 protected:
  Expression() = default;

 private:
  ExprKind kind_ = ExprKind::kBase;
  std::string relation_name_;
  ExpressionPtr left_;
  ExpressionPtr right_;
  Predicate predicate_ = Predicate::Literal(true);
  std::vector<size_t> projection_;
  std::vector<size_t> group_by_;
  AggregateFunction aggregate_;
};

/// Convenience builders mirroring the paper's notation:
///   using namespace expdb::algebra;
///   auto e = Project(Join(Base("Pol"), Base("El"), ColumnsEqual(0, 2)), {1});
namespace algebra {

inline ExpressionPtr Base(std::string name) {
  return Expression::MakeBase(std::move(name));
}
inline ExpressionPtr Select(ExpressionPtr e, Predicate p) {
  return Expression::MakeSelect(std::move(e), std::move(p));
}
inline ExpressionPtr Project(ExpressionPtr e, std::vector<size_t> attrs) {
  return Expression::MakeProject(std::move(e), std::move(attrs));
}
inline ExpressionPtr Product(ExpressionPtr l, ExpressionPtr r) {
  return Expression::MakeProduct(std::move(l), std::move(r));
}
inline ExpressionPtr Union(ExpressionPtr l, ExpressionPtr r) {
  return Expression::MakeUnion(std::move(l), std::move(r));
}
inline ExpressionPtr Join(ExpressionPtr l, ExpressionPtr r, Predicate p) {
  return Expression::MakeJoin(std::move(l), std::move(r), std::move(p));
}
inline ExpressionPtr Intersect(ExpressionPtr l, ExpressionPtr r) {
  return Expression::MakeIntersect(std::move(l), std::move(r));
}
inline ExpressionPtr Difference(ExpressionPtr l, ExpressionPtr r) {
  return Expression::MakeDifference(std::move(l), std::move(r));
}
inline ExpressionPtr Aggregate(ExpressionPtr e, std::vector<size_t> group_by,
                               AggregateFunction f) {
  return Expression::MakeAggregate(std::move(e), std::move(group_by), f);
}
/// R ⋉exp_p S: the tuples of R with at least one p-match in S, carrying
/// texp min(texp_R(r), max{texp_S(s) | s matches r}) — exactly the
/// expiration π_{R}(R ⋈exp_p S) derives (max over duplicates of min over
/// pairs). Monotonic.
inline ExpressionPtr SemiJoin(ExpressionPtr l, ExpressionPtr r, Predicate p) {
  return Expression::MakeSemiJoin(std::move(l), std::move(r), std::move(p));
}
/// R ▷exp_p S: the tuples of R with no p-match in S — the paper's "left
/// outer anti-semijoin" generalization of −exp. Non-monotonic: a tuple
/// must re-appear when its last surviving match expires; the same
/// critical-tuple analysis, τ_R, and Theorem 3 patching apply, keyed by
/// the predicate instead of tuple equality.
inline ExpressionPtr AntiJoin(ExpressionPtr l, ExpressionPtr r, Predicate p) {
  return Expression::MakeAntiJoin(std::move(l), std::move(r), std::move(p));
}

}  // namespace algebra

}  // namespace expdb

#endif  // EXPDB_CORE_EXPRESSION_H_
