// JoinKeyIndex: the shared hash-join machinery of ⋈exp, ⋉exp, and ▷exp.
//
// Given the build side S of a join whose predicate p is formulated against
// the concatenated frame R ++ S, the index
//  * extracts the cross-side equality columns from p's top-level ∧-spine
//    (the hash-join fast path),
//  * partitions S by key hash (in parallel when asked) and groups the
//    build tuples per distinct key, caching each group's maximum
//    expiration time — ⋉exp and ▷exp need exactly max{texp_S(s)} per key,
//  * probes WITHOUT materializing a key tuple: the probe hashes the left
//    tuple's key columns in place (Tuple::HashOfColumns) and compares
//    column-by-column, so the former per-probe Tuple::Project allocation
//    is gone, and
//  * knows whether p is *fully covered* by the extracted equalities (p is
//    exactly a conjunction of cross-side column equalities), in which case
//    a key match already implies p and the per-candidate
//    p.Evaluate(r ++ s) re-check — and its Concat allocation — is skipped.
//
// When p has no cross-side equalities every build tuple is a candidate for
// every probe (the index degenerates to a scan list).

#ifndef EXPDB_CORE_JOIN_KEY_INDEX_H_
#define EXPDB_CORE_JOIN_KEY_INDEX_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/timestamp.h"
#include "core/predicate.h"
#include "relational/relation.h"

namespace expdb {

class JoinKeyIndex {
 public:
  /// One build-side tuple (stable pointer into the build relation).
  struct Candidate {
    const Tuple* tuple;
    Timestamp texp;
  };

  /// All build tuples sharing one key (or all build tuples when keyless).
  struct Group {
    std::vector<Candidate> candidates;
    /// max{texp_S(s) | s ∈ candidates} — the ⋉exp/▷exp "last match" time
    /// when the predicate is covered.
    Timestamp max_texp = Timestamp::Zero();
  };

  /// Indexes `build` (the right input, attribute offset `n_left` in the
  /// predicate's frame). `workers` > 1 partitions the build by key hash
  /// and fills the partitions in parallel on the shared pool. `build`
  /// must outlive the index and stay unmodified.
  JoinKeyIndex(const Relation& build, const Predicate& predicate,
               size_t n_left, size_t workers = 1);

  /// True when cross-side equality columns were extracted.
  bool has_keys() const { return !left_cols_.empty(); }

  /// True when a key match already implies the predicate (p is exactly a
  /// conjunction of the extracted cross-side equalities).
  bool predicate_covered() const { return covered_; }

  const std::vector<size_t>& left_cols() const { return left_cols_; }
  const std::vector<size_t>& right_cols() const { return right_cols_; }

  /// \brief Build tuples whose key columns equal `left_tuple`'s — every
  /// build tuple when keyless. nullptr when no key matches.
  const Group* Probe(const Tuple& left_tuple) const;

  /// \brief Max texp over build tuples matching `left_tuple` under the
  /// full predicate; nullopt when none match. O(1) past the hash lookup
  /// when the predicate is covered (uses the group's cached max).
  std::optional<Timestamp> MaxMatchTexp(const Tuple& left_tuple) const;

 private:
  struct Partition {
    std::vector<Group> groups;
    /// Representative build tuple per group (key columns define the key).
    std::vector<const Tuple*> reps;
    /// Open addressing into groups/reps; -1 = empty. Power-of-two sized.
    std::vector<int32_t> slots;
  };

  /// True iff the key columns of `probe` (via `probe_cols`) equal the key
  /// columns of representative `rep` (via right_cols_).
  bool KeysEqual(const Tuple& probe, const std::vector<size_t>& probe_cols,
                 const Tuple& rep) const;

  void BuildSerial(const Relation& build);
  void BuildParallel(const Relation& build, size_t workers);
  void InsertIntoPartition(Partition* part, size_t hash,
                           const Relation::Entry& entry);

  const Predicate& predicate_;
  std::vector<size_t> left_cols_, right_cols_;
  bool covered_ = false;
  std::vector<Partition> partitions_;  // size 1 when keyless or serial
  Group all_;                          // keyless fallback
};

}  // namespace expdb

#endif  // EXPDB_CORE_JOIN_KEY_INDEX_H_
