// Predicate: the selection predicate language of the paper's algebra.
//
// The paper's σexp admits predicates of the form j = k (correlated: two
// attributes of the tuple) or j = a (uncorrelated: attribute vs. constant),
// and ∧/∨-connected compositions of these. ExpDB additionally supports the
// other comparison operators and ¬, which the classical algebra admits and
// which do not interact with expiration times (selection passes tuple
// expiration times through unchanged either way).

#ifndef EXPDB_CORE_PREDICATE_H_
#define EXPDB_CORE_PREDICATE_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace expdb {

/// Comparison operators usable in predicates.
enum class ComparisonOp { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view ComparisonOpToString(ComparisonOp op);

/// \brief One side of a comparison: an attribute reference (0-based index),
/// a constant of the attribute domain D, or a statement parameter ($n in
/// SQL, 0-based here) awaiting a bound value. Parameters exist only in
/// parameterized plan skeletons; Predicate::BindParameters turns them into
/// constants before execution.
class Operand {
 public:
  enum class Kind { kColumn, kConstant, kParameter };

  /// Attribute reference r(index).
  static Operand Column(size_t index) { return Operand(Kind::kColumn, index); }
  /// Constant a ∈ D.
  static Operand Constant(Value v) { return Operand(std::move(v)); }
  /// Statement parameter placeholder (0-based).
  static Operand Parameter(size_t index) {
    return Operand(Kind::kParameter, index);
  }

  bool is_column() const { return kind_ == Kind::kColumn; }
  bool is_constant() const { return kind_ == Kind::kConstant; }
  bool is_parameter() const { return kind_ == Kind::kParameter; }
  size_t column_index() const { return index_; }
  size_t parameter_index() const { return index_; }
  const Value& constant() const { return value_; }

  /// The operand's value for a given tuple. An unbound parameter resolves
  /// to the null Value; plans are parameter-bound before execution.
  const Value& Resolve(const Tuple& t) const {
    return kind_ == Kind::kColumn ? t.at(index_) : value_;
  }

  std::string ToString() const;

 private:
  Operand(Kind kind, size_t index) : kind_(kind), index_(index) {}
  explicit Operand(Value v) : kind_(Kind::kConstant), value_(std::move(v)) {}

  Kind kind_;
  size_t index_ = 0;
  Value value_;
};

/// \brief An immutable predicate tree; cheap to copy (shared nodes).
class Predicate {
 public:
  /// The always-true predicate (selection that keeps everything).
  Predicate();

  /// lhs op rhs.
  static Predicate Compare(Operand lhs, ComparisonOp op, Operand rhs);
  /// r(i) = r(j) — the paper's correlated selection.
  static Predicate ColumnsEqual(size_t i, size_t j);
  /// r(i) = a — the paper's uncorrelated selection.
  static Predicate ColumnEquals(size_t i, Value a);
  /// Constant truth value.
  static Predicate Literal(bool value);

  Predicate And(const Predicate& other) const;
  Predicate Or(const Predicate& other) const;
  Predicate Not() const;

  /// \brief Evaluates against a tuple. Column indices must be in range
  /// (checked by Validate at plan time).
  bool Evaluate(const Tuple& t) const;

  /// \brief Checks every referenced column index against the schema.
  Status Validate(const Schema& schema) const;

  /// \brief True iff some comparison references two columns ("correlated"
  /// in the paper's terminology).
  bool IsCorrelated() const;

  /// \brief All referenced column indices.
  std::set<size_t> ReferencedColumns() const;

  /// \brief Returns this predicate with every column index >= `from`
  /// shifted by `offset`. Used to build the join rewrite's p' on R ×exp S
  /// from a predicate formulated against S alone.
  Predicate ShiftColumns(size_t from, size_t offset) const;

  /// \brief Equality pairs (i, j) extractable from the top-level ∧-spine;
  /// used by the hash-join fast path. Empty if none.
  std::vector<std::pair<size_t, size_t>> TopLevelEqualities() const;

  /// \brief Splits the top-level ∧-spine into its conjuncts (a predicate
  /// without a top-level And yields itself). Used by the rewriter to push
  /// single-side conjuncts below a product.
  std::vector<Predicate> TopLevelConjuncts() const;

  /// \brief Rewrites every column reference through `mapping` (old index
  /// -> new index). Fails with NotFound if the predicate references a
  /// column absent from the mapping. Used to push a selection below a
  /// projection.
  Result<Predicate> RemapColumns(
      const std::map<size_t, size_t>& mapping) const;

  /// \brief Constant folding: constant-vs-constant comparisons become
  /// literals, and ∧/∨/¬ over literals simplify (p ∧ false → false,
  /// p ∧ true → p, and duals). Column references are untouched, so the
  /// folded predicate evaluates identically on every tuple. Used by the
  /// planner to detect constant-false filters (whole subtree elided).
  Predicate FoldConstants() const;

  /// \brief The constant truth value of this predicate, if it is a bare
  /// literal (possibly after FoldConstants); nullopt otherwise.
  std::optional<bool> AsLiteral() const;

  /// \brief True iff some comparison references an unbound parameter.
  bool HasParameters() const;

  /// \brief Number of parameter slots: max parameter index + 1 (0 when the
  /// predicate has no parameters).
  size_t ParameterCount() const;

  /// \brief Returns this predicate with every parameter operand replaced
  /// by the corresponding constant from `args` (parameter i -> args[i]).
  /// Fails with InvalidArgument if a parameter index is out of range.
  Result<Predicate> BindParameters(const std::vector<Value>& args) const;

  std::string ToString() const;

 private:
  struct Node;
  explicit Predicate(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

}  // namespace expdb

#endif  // EXPDB_CORE_PREDICATE_H_
