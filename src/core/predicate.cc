#include "core/predicate.h"

#include <algorithm>

namespace expdb {

std::string_view ComparisonOpToString(ComparisonOp op) {
  switch (op) {
    case ComparisonOp::kEq:
      return "=";
    case ComparisonOp::kNe:
      return "!=";
    case ComparisonOp::kLt:
      return "<";
    case ComparisonOp::kLe:
      return "<=";
    case ComparisonOp::kGt:
      return ">";
    case ComparisonOp::kGe:
      return ">=";
  }
  return "?";
}

std::string Operand::ToString() const {
  if (is_column()) return "$" + std::to_string(index_ + 1);  // paper: 1-based
  if (is_parameter()) return "?" + std::to_string(index_ + 1);
  if (value_.is_string()) return "'" + value_.ToString() + "'";
  return value_.ToString();
}

namespace {

bool ApplyComparison(const Value& a, ComparisonOp op, const Value& b) {
  switch (op) {
    case ComparisonOp::kEq:
      return a == b;
    case ComparisonOp::kNe:
      return a != b;
    case ComparisonOp::kLt:
      return a < b;
    case ComparisonOp::kLe:
      return a <= b;
    case ComparisonOp::kGt:
      return a > b;
    case ComparisonOp::kGe:
      return a >= b;
  }
  return false;
}

}  // namespace

struct Predicate::Node {
  enum class Kind { kLiteral, kCompare, kAnd, kOr, kNot };

  Kind kind;
  // kLiteral
  bool literal = true;
  // kCompare
  Operand lhs = Operand::Constant(Value());
  ComparisonOp op = ComparisonOp::kEq;
  Operand rhs = Operand::Constant(Value());
  // kAnd / kOr / kNot
  std::shared_ptr<const Node> left;
  std::shared_ptr<const Node> right;

  static std::shared_ptr<const Node> MakeLiteral(bool v) {
    auto n = std::make_shared<Node>();
    n->kind = Kind::kLiteral;
    n->literal = v;
    return n;
  }

  bool Evaluate(const Tuple& t) const {
    switch (kind) {
      case Kind::kLiteral:
        return literal;
      case Kind::kCompare:
        return ApplyComparison(lhs.Resolve(t), op, rhs.Resolve(t));
      case Kind::kAnd:
        return left->Evaluate(t) && right->Evaluate(t);
      case Kind::kOr:
        return left->Evaluate(t) || right->Evaluate(t);
      case Kind::kNot:
        return !left->Evaluate(t);
    }
    return false;
  }

  Status Validate(const Schema& schema) const {
    switch (kind) {
      case Kind::kLiteral:
        return Status::OK();
      case Kind::kCompare:
        for (const Operand* o : {&lhs, &rhs}) {
          if (o->is_column() && !schema.IsValidIndex(o->column_index())) {
            return Status::OutOfRange(
                "predicate references attribute " +
                std::to_string(o->column_index() + 1) +
                " beyond schema " + schema.ToString());
          }
        }
        return Status::OK();
      case Kind::kAnd:
      case Kind::kOr: {
        EXPDB_RETURN_NOT_OK(left->Validate(schema));
        return right->Validate(schema);
      }
      case Kind::kNot:
        return left->Validate(schema);
    }
    return Status::OK();
  }

  void CollectColumns(std::set<size_t>* out) const {
    switch (kind) {
      case Kind::kLiteral:
        return;
      case Kind::kCompare:
        if (lhs.is_column()) out->insert(lhs.column_index());
        if (rhs.is_column()) out->insert(rhs.column_index());
        return;
      case Kind::kAnd:
      case Kind::kOr:
        left->CollectColumns(out);
        right->CollectColumns(out);
        return;
      case Kind::kNot:
        left->CollectColumns(out);
        return;
    }
  }

  bool IsCorrelated() const {
    switch (kind) {
      case Kind::kLiteral:
        return false;
      case Kind::kCompare:
        return lhs.is_column() && rhs.is_column();
      case Kind::kAnd:
      case Kind::kOr:
        return left->IsCorrelated() || right->IsCorrelated();
      case Kind::kNot:
        return left->IsCorrelated();
    }
    return false;
  }

  std::shared_ptr<const Node> Shift(size_t from, size_t offset) const {
    auto n = std::make_shared<Node>(*this);
    switch (kind) {
      case Kind::kLiteral:
        break;
      case Kind::kCompare: {
        auto shift_op = [&](const Operand& o) {
          if (o.is_column() && o.column_index() >= from) {
            return Operand::Column(o.column_index() + offset);
          }
          return o;
        };
        n->lhs = shift_op(lhs);
        n->rhs = shift_op(rhs);
        break;
      }
      case Kind::kAnd:
      case Kind::kOr:
        n->left = left->Shift(from, offset);
        n->right = right->Shift(from, offset);
        break;
      case Kind::kNot:
        n->left = left->Shift(from, offset);
        break;
    }
    return n;
  }

  /// max parameter index + 1 over the subtree (0 = no parameters).
  size_t ParameterCount() const {
    switch (kind) {
      case Kind::kLiteral:
        return 0;
      case Kind::kCompare: {
        size_t n = 0;
        for (const Operand* o : {&lhs, &rhs}) {
          if (o->is_parameter()) {
            n = std::max(n, o->parameter_index() + 1);
          }
        }
        return n;
      }
      case Kind::kAnd:
      case Kind::kOr:
        return std::max(left->ParameterCount(), right->ParameterCount());
      case Kind::kNot:
        return left->ParameterCount();
    }
    return 0;
  }

  Result<std::shared_ptr<const Node>> BindParams(
      const std::vector<Value>& args) const {
    switch (kind) {
      case Kind::kLiteral:
        return std::shared_ptr<const Node>(std::make_shared<Node>(*this));
      case Kind::kCompare: {
        auto bind_op = [&](const Operand& o) -> Result<Operand> {
          if (!o.is_parameter()) return o;
          if (o.parameter_index() >= args.size()) {
            return Status::InvalidArgument(
                "parameter ?" + std::to_string(o.parameter_index() + 1) +
                " has no bound value (" + std::to_string(args.size()) +
                " supplied)");
          }
          return Operand::Constant(args[o.parameter_index()]);
        };
        auto n = std::make_shared<Node>(*this);
        EXPDB_ASSIGN_OR_RETURN(n->lhs, bind_op(lhs));
        EXPDB_ASSIGN_OR_RETURN(n->rhs, bind_op(rhs));
        return std::shared_ptr<const Node>(n);
      }
      case Kind::kAnd:
      case Kind::kOr: {
        auto n = std::make_shared<Node>(*this);
        EXPDB_ASSIGN_OR_RETURN(n->left, left->BindParams(args));
        EXPDB_ASSIGN_OR_RETURN(n->right, right->BindParams(args));
        return std::shared_ptr<const Node>(n);
      }
      case Kind::kNot: {
        auto n = std::make_shared<Node>(*this);
        EXPDB_ASSIGN_OR_RETURN(n->left, left->BindParams(args));
        return std::shared_ptr<const Node>(n);
      }
    }
    return std::shared_ptr<const Node>(std::make_shared<Node>(*this));
  }

  void CollectTopLevelEqualities(
      std::vector<std::pair<size_t, size_t>>* out) const {
    if (kind == Kind::kAnd) {
      left->CollectTopLevelEqualities(out);
      right->CollectTopLevelEqualities(out);
    } else if (kind == Kind::kCompare && op == ComparisonOp::kEq &&
               lhs.is_column() && rhs.is_column()) {
      out->emplace_back(lhs.column_index(), rhs.column_index());
    }
  }

  /// Folds `node` bottom-up (see Predicate::FoldConstants); returns the
  /// original pointer when nothing changed so untouched subtrees stay
  /// shared.
  static std::shared_ptr<const Node> Fold(
      const std::shared_ptr<const Node>& node) {
    auto as_literal =
        [](const std::shared_ptr<const Node>& n) -> std::optional<bool> {
      if (n->kind != Kind::kLiteral) return std::nullopt;
      return n->literal;
    };
    switch (node->kind) {
      case Kind::kLiteral:
        return node;
      case Kind::kCompare:
        // Parameters are not constants: a parameterized comparison must
        // survive folding so each binding can decide it at execution.
        if (node->lhs.is_constant() && node->rhs.is_constant()) {
          return MakeLiteral(ApplyComparison(node->lhs.constant(), node->op,
                                             node->rhs.constant()));
        }
        return node;
      case Kind::kAnd: {
        auto l = Fold(node->left);
        auto r = Fold(node->right);
        const std::optional<bool> lv = as_literal(l);
        const std::optional<bool> rv = as_literal(r);
        if ((lv && !*lv) || (rv && !*rv)) return MakeLiteral(false);
        if (lv && *lv) return r;
        if (rv && *rv) return l;
        if (l == node->left && r == node->right) return node;
        auto n = std::make_shared<Node>(*node);
        n->left = std::move(l);
        n->right = std::move(r);
        return n;
      }
      case Kind::kOr: {
        auto l = Fold(node->left);
        auto r = Fold(node->right);
        const std::optional<bool> lv = as_literal(l);
        const std::optional<bool> rv = as_literal(r);
        if ((lv && *lv) || (rv && *rv)) return MakeLiteral(true);
        if (lv && !*lv) return r;
        if (rv && !*rv) return l;
        if (l == node->left && r == node->right) return node;
        auto n = std::make_shared<Node>(*node);
        n->left = std::move(l);
        n->right = std::move(r);
        return n;
      }
      case Kind::kNot: {
        auto l = Fold(node->left);
        if (const std::optional<bool> lv = as_literal(l)) {
          return MakeLiteral(!*lv);
        }
        if (l == node->left) return node;
        auto n = std::make_shared<Node>(*node);
        n->left = std::move(l);
        return n;
      }
    }
    return node;
  }

  std::string ToString() const {
    switch (kind) {
      case Kind::kLiteral:
        return literal ? "true" : "false";
      case Kind::kCompare:
        return lhs.ToString() + " " +
               std::string(ComparisonOpToString(op)) + " " + rhs.ToString();
      case Kind::kAnd:
        return "(" + left->ToString() + " and " + right->ToString() + ")";
      case Kind::kOr:
        return "(" + left->ToString() + " or " + right->ToString() + ")";
      case Kind::kNot:
        return "not (" + left->ToString() + ")";
    }
    return "?";
  }
};

Predicate::Predicate() : node_(Node::MakeLiteral(true)) {}

Predicate Predicate::Compare(Operand lhs, ComparisonOp op, Operand rhs) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kCompare;
  n->lhs = std::move(lhs);
  n->op = op;
  n->rhs = std::move(rhs);
  return Predicate(std::move(n));
}

Predicate Predicate::ColumnsEqual(size_t i, size_t j) {
  return Compare(Operand::Column(i), ComparisonOp::kEq, Operand::Column(j));
}

Predicate Predicate::ColumnEquals(size_t i, Value a) {
  return Compare(Operand::Column(i), ComparisonOp::kEq,
                 Operand::Constant(std::move(a)));
}

Predicate Predicate::Literal(bool value) {
  return Predicate(Node::MakeLiteral(value));
}

Predicate Predicate::And(const Predicate& other) const {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kAnd;
  n->left = node_;
  n->right = other.node_;
  return Predicate(std::move(n));
}

Predicate Predicate::Or(const Predicate& other) const {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kOr;
  n->left = node_;
  n->right = other.node_;
  return Predicate(std::move(n));
}

Predicate Predicate::Not() const {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kNot;
  n->left = node_;
  return Predicate(std::move(n));
}

bool Predicate::Evaluate(const Tuple& t) const { return node_->Evaluate(t); }

Status Predicate::Validate(const Schema& schema) const {
  return node_->Validate(schema);
}

bool Predicate::IsCorrelated() const { return node_->IsCorrelated(); }

std::set<size_t> Predicate::ReferencedColumns() const {
  std::set<size_t> out;
  node_->CollectColumns(&out);
  return out;
}

Predicate Predicate::ShiftColumns(size_t from, size_t offset) const {
  return Predicate(node_->Shift(from, offset));
}

std::vector<std::pair<size_t, size_t>> Predicate::TopLevelEqualities() const {
  std::vector<std::pair<size_t, size_t>> out;
  node_->CollectTopLevelEqualities(&out);
  return out;
}

std::vector<Predicate> Predicate::TopLevelConjuncts() const {
  std::vector<Predicate> out;
  std::vector<std::shared_ptr<const Node>> stack = {node_};
  while (!stack.empty()) {
    auto node = stack.back();
    stack.pop_back();
    if (node->kind == Node::Kind::kAnd) {
      // Push right first so conjuncts come out in left-to-right order.
      stack.push_back(node->right);
      stack.push_back(node->left);
    } else {
      out.push_back(Predicate(node));
    }
  }
  return out;
}

Result<Predicate> Predicate::RemapColumns(
    const std::map<size_t, size_t>& mapping) const {
  // Remapping reuses the Shift machinery's structure via a recursive copy.
  struct Remapper {
    const std::map<size_t, size_t>& mapping;

    Result<Operand> MapOperand(const Operand& o) const {
      if (!o.is_column()) return o;
      auto it = mapping.find(o.column_index());
      if (it == mapping.end()) {
        return Status::NotFound(
            "column $" + std::to_string(o.column_index() + 1) +
            " has no remapping");
      }
      return Operand::Column(it->second);
    }

    Result<std::shared_ptr<const Node>> Map(
        const std::shared_ptr<const Node>& node) const {
      auto copy = std::make_shared<Node>(*node);
      switch (node->kind) {
        case Node::Kind::kLiteral:
          break;
        case Node::Kind::kCompare: {
          EXPDB_ASSIGN_OR_RETURN(copy->lhs, MapOperand(node->lhs));
          EXPDB_ASSIGN_OR_RETURN(copy->rhs, MapOperand(node->rhs));
          break;
        }
        case Node::Kind::kAnd:
        case Node::Kind::kOr: {
          EXPDB_ASSIGN_OR_RETURN(copy->left, Map(node->left));
          EXPDB_ASSIGN_OR_RETURN(copy->right, Map(node->right));
          break;
        }
        case Node::Kind::kNot: {
          EXPDB_ASSIGN_OR_RETURN(copy->left, Map(node->left));
          break;
        }
      }
      return std::shared_ptr<const Node>(copy);
    }
  };
  Remapper remapper{mapping};
  EXPDB_ASSIGN_OR_RETURN(std::shared_ptr<const Node> mapped,
                         remapper.Map(node_));
  return Predicate(std::move(mapped));
}

Predicate Predicate::FoldConstants() const {
  return Predicate(Node::Fold(node_));
}

std::optional<bool> Predicate::AsLiteral() const {
  if (node_->kind != Node::Kind::kLiteral) return std::nullopt;
  return node_->literal;
}

bool Predicate::HasParameters() const {
  return node_->ParameterCount() > 0;
}

size_t Predicate::ParameterCount() const { return node_->ParameterCount(); }

Result<Predicate> Predicate::BindParameters(
    const std::vector<Value>& args) const {
  if (!HasParameters()) return *this;
  EXPDB_ASSIGN_OR_RETURN(std::shared_ptr<const Node> bound,
                         node_->BindParams(args));
  return Predicate(std::move(bound));
}

std::string Predicate::ToString() const { return node_->ToString(); }

}  // namespace expdb
