// Aggregation with expiration times (paper Sec. 2.6.1).
//
// aggexp_{j1..jn,f}(R) keeps every attribute of R and appends the aggregate
// value of the tuple's partition (Klug-style semantics, Eq. 8). Three
// expiration-time assignment modes are provided:
//
//  * kConservative  — Eq. (8): every result tuple of a partition carries
//                     the minimum expiration time of the partition.
//  * kContributingSet — Table 1: time-sliced neutral subsets are ignored;
//                     result tuples carry the minimum expiration time of
//                     the contributing set C (or the partition maximum when
//                     C = ∅). Closed-form per standard SQL aggregate.
//  * kExact         — Eq. (9): replay the partition's expirations to find
//                     ν, the first instant the aggregate value changes.
//
// Soundness note (documented in DESIGN.md): read literally, the paper's
// per-tuple formulas can let a result tuple outlive its source tuple r
// (e.g. a non-minimal r under a min aggregate), which would make the
// materialized result over-full relative to recomputation and break
// Theorem 2. ExpDB therefore always caps a result tuple's expiration at
// texp_R(r); the mode only controls the partition-wide "value change" cap.
//
// A second off-by-one note: the paper defines ν via χ(τ') ≡ f(expτ'(P)) ≠
// f(expτ'+1(P)), which names the last instant the old value is observable.
// ExpDB's change_cap is the first instant the *new* value holds (ν + 1 in
// the paper's terms), which is the correct expiration time under the
// "visible while texp > τ" convention used everywhere else.

#ifndef EXPDB_CORE_AGGREGATE_H_
#define EXPDB_CORE_AGGREGATE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/timestamp.h"
#include "common/value.h"
#include "relational/tuple.h"

namespace expdb {

/// The family F of standard SQL aggregate functions.
enum class AggregateKind { kMin, kMax, kSum, kCount, kAvg };

std::string_view AggregateKindToString(AggregateKind kind);

/// \brief An aggregate function f ∈ F with its argument attribute (the
/// paper's subscript, e.g. sum_1). Count takes no attribute.
struct AggregateFunction {
  AggregateKind kind = AggregateKind::kCount;
  size_t attr = 0;  ///< 0-based argument attribute; unused for count.

  static AggregateFunction Min(size_t attr) {
    return {AggregateKind::kMin, attr};
  }
  static AggregateFunction Max(size_t attr) {
    return {AggregateKind::kMax, attr};
  }
  static AggregateFunction Sum(size_t attr) {
    return {AggregateKind::kSum, attr};
  }
  static AggregateFunction Count() { return {AggregateKind::kCount, 0}; }
  static AggregateFunction Avg(size_t attr) {
    return {AggregateKind::kAvg, attr};
  }

  /// \brief The result type given the argument attribute's type.
  ValueType ResultType(ValueType attr_type) const;

  /// Renders e.g. "sum_3" (attribute subscript 1-based, as in the paper).
  std::string ToString() const;

  bool operator==(const AggregateFunction&) const = default;
};

/// How expiration times are assigned to aggregation results.
enum class AggregateExpirationMode {
  kConservative,     ///< Eq. (8)
  kContributingSet,  ///< Table 1 neutral subsets
  kExact,            ///< Eq. (9) ν-replay; works for any deterministic f
};

std::string_view AggregateExpirationModeToString(AggregateExpirationMode m);

/// \brief One member of a partition: the source tuple and its texp.
struct PartitionEntry {
  const Tuple* tuple;
  Timestamp texp;
};

/// \brief The lifetime analysis of one partition under one aggregate.
struct PartitionAnalysis {
  /// f(P) at materialization time.
  Value value;
  /// Cap applied to every result tuple of the partition: the first instant
  /// the aggregate value is no longer `value` (mode-dependent bound). When
  /// the value never changes while the partition lives, this equals
  /// `death` and tuples simply expire with their sources.
  Timestamp change_cap;
  /// max{texp_R(r) | r ∈ P}: when the whole partition has expired.
  Timestamp death;
  /// True iff the aggregate value changes strictly before the partition
  /// dies — the case that invalidates the materialized expression
  /// (Sec. 2.6.1's first case for χ).
  bool invalidates_expression = false;
};

/// \brief Computes f(P). P must be non-empty; sum/avg require numeric
/// attribute values.
Result<Value> ApplyAggregate(const AggregateFunction& f,
                             const std::vector<PartitionEntry>& partition);

/// \brief Full lifetime analysis of a partition under `mode`.
///
/// The partition must be non-empty and contain only tuples unexpired at
/// the materialization time (callers partition expτ(R)).
Result<PartitionAnalysis> AnalyzePartition(
    const std::vector<PartitionEntry>& partition, const AggregateFunction& f,
    AggregateExpirationMode mode);

/// \brief All instants at which the aggregate value of this partition
/// changes while the partition is still alive, in increasing order.
/// Used for Schrödinger validity intervals and for the paper's Sec. 3.4.1
/// bound on the number of future aggregate values (at most |P|).
Result<std::vector<Timestamp>> PartitionChangeTimes(
    const std::vector<PartitionEntry>& partition, const AggregateFunction& f);

/// \brief Approximate aggregate lifetimes (the paper's future-work item:
/// "maintaining, e.g., aggregate values with certain error bounds").
///
/// Like AnalyzePartition in kExact mode, but the materialized value is
/// considered valid while the true aggregate stays within ± `tolerance`
/// (absolute) of it, so `change_cap` is the first instant the live
/// aggregate *deviates by more than* the bound while the partition is
/// still alive. tolerance = 0 degenerates to the exact analysis. Only
/// numeric aggregates participate; min/max over strings ignore the bound.
Result<PartitionAnalysis> AnalyzeApproxPartition(
    const std::vector<PartitionEntry>& partition, const AggregateFunction& f,
    double tolerance);

}  // namespace expdb

#endif  // EXPDB_CORE_AGGREGATE_H_
