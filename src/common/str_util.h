// Small string helpers shared across modules (no locale, no allocation
// surprises): join, padding, case folding, numeric parsing.

#ifndef EXPDB_COMMON_STR_UTIL_H_
#define EXPDB_COMMON_STR_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace expdb {

/// \brief Joins the elements' ToString() with a separator.
template <typename Container>
std::string JoinToString(const Container& items, std::string_view sep) {
  std::string out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) out += sep;
    first = false;
    out += item.ToString();
  }
  return out;
}

/// \brief Joins plain strings with a separator.
std::string JoinStrings(const std::vector<std::string>& items,
                        std::string_view sep);

/// \brief Left-justifies `s` within `width` columns (UTF-8 unaware; all
/// ExpDB identifiers and rendered values are ASCII).
std::string PadRight(std::string_view s, size_t width);

/// \brief Right-justifies `s` within `width` columns.
std::string PadLeft(std::string_view s, size_t width);

/// \brief ASCII lower-casing (SQL keywords are case-insensitive).
std::string AsciiToLower(std::string_view s);

/// \brief ASCII upper-casing.
std::string AsciiToUpper(std::string_view s);

/// \brief Case-insensitive ASCII equality.
bool AsciiEqualsIgnoreCase(std::string_view a, std::string_view b);

/// \brief Parses a decimal int64; nullopt on any malformed input.
std::optional<int64_t> ParseInt64(std::string_view s);

/// \brief Parses a decimal double; nullopt on any malformed input.
std::optional<double> ParseDouble(std::string_view s);

}  // namespace expdb

#endif  // EXPDB_COMMON_STR_UTIL_H_
