#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <utility>

#include "obs/trace.h"

namespace expdb {

namespace {

thread_local bool t_in_worker = false;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(
      std::max<size_t>(4, std::thread::hardware_concurrency()));
  return *pool;
}

bool ThreadPool::InWorkerThread() { return t_in_worker; }

ParallelForStats ParallelFor(
    size_t n, const ParallelForOptions& options,
    const std::function<void(size_t, size_t)>& body) {
  ParallelForStats stats;
  if (n == 0) {
    stats.morsels = 0;
    return stats;
  }
  ThreadPool& pool = options.pool != nullptr ? *options.pool
                                             : ThreadPool::Shared();
  const size_t min_morsel = std::max<size_t>(1, options.min_morsel_size);
  size_t workers = options.parallelism == 0 ? pool.num_threads() + 1
                                            : options.parallelism;
  // A worker needs at least one full morsel to be worth waking.
  workers = std::min(workers, n / min_morsel);
  if (workers <= 1 || ThreadPool::InWorkerThread()) {
    body(0, n);
    return stats;
  }

  const size_t per_worker = std::max<size_t>(1, options.max_morsels_per_worker);
  const size_t morsel =
      std::max(min_morsel,
               (n + workers * per_worker - 1) / (workers * per_worker));

  // Shared by the caller and every helper task. The caller blocks until
  // every scheduled helper has finished (pending_helpers == 0), so `body`
  // may safely live on the caller's stack; the shared_ptr merely keeps the
  // control block valid for the helper lambdas themselves.
  struct State {
    std::atomic<size_t> cursor{0};
    size_t n;
    size_t morsel;
    const std::function<void(size_t, size_t)>* body;

    std::mutex mu;
    std::condition_variable cv;
    size_t pending_helpers = 0;
    std::exception_ptr error;

    void Drain() {
      for (;;) {
        const size_t begin = cursor.fetch_add(morsel,
                                              std::memory_order_relaxed);
        if (begin >= n) return;
        (*body)(begin, std::min(begin + morsel, n));
      }
    }
  };
  auto state = std::make_shared<State>();
  state->n = n;
  state->morsel = morsel;
  state->body = &body;

  const size_t helpers = workers - 1;
  state->pending_helpers = helpers;
  // Helper tasks run on pool threads with no ambient trace context of
  // their own; install the caller's so spans opened inside the body
  // become children of the caller's span instead of orphan roots.
  const obs::TraceContext trace_ctx = obs::CurrentTraceContext();
  for (size_t i = 0; i < helpers; ++i) {
    pool.Schedule([state, trace_ctx] {
      obs::TraceContextScope trace_scope(trace_ctx);
      try {
        state->Drain();
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->error) state->error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(state->mu);
      if (--state->pending_helpers == 0) state->cv.notify_all();
    });
  }

  try {
    state->Drain();
  } catch (...) {
    std::lock_guard<std::mutex> lock(state->mu);
    if (!state->error) state->error = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] { return state->pending_helpers == 0; });
    if (state->error) std::rethrow_exception(state->error);
  }

  stats.parallel = true;
  stats.workers = workers;
  stats.morsels = (n + morsel - 1) / morsel;
  return stats;
}

}  // namespace expdb
