// ThreadPool + ParallelFor: the morsel-driven parallel runtime.
//
// A fixed pool of worker threads executes queued tasks; ParallelFor chops
// an index range [0, n) into morsels that workers (and the calling thread)
// claim from a shared atomic cursor — the classic morsel-driven scheme:
// work stealing falls out of the shared cursor, and stragglers only ever
// cost one morsel of imbalance.
//
// Design constraints honored here:
//  * Tiny inputs stay serial: below 2 x min_morsel_size the body runs
//    inline on the caller with zero scheduling overhead.
//  * No nested parallelism: a ParallelFor issued from inside a pool worker
//    runs serially (otherwise tasks waiting on tasks could deadlock a
//    bounded pool).
//  * The calling thread always participates, so ParallelFor completes even
//    if every pool worker is busy elsewhere.

#ifndef EXPDB_COMMON_THREAD_POOL_H_
#define EXPDB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace expdb {

/// \brief A fixed-size pool of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// \brief Enqueues `fn` for execution on some worker thread.
  void Schedule(std::function<void()> fn);

  /// \brief The process-wide shared pool used by the parallel evaluator.
  /// Sized to the hardware concurrency (minimum 4, so the parallel paths
  /// are genuinely exercised — and race-checked under TSan — even on small
  /// CI machines). Created on first use; lives for the process.
  static ThreadPool& Shared();

  /// \brief True when the calling thread is a pool worker (of any pool).
  /// ParallelFor uses this to refuse nested parallelism.
  static bool InWorkerThread();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// Tuning knobs for ParallelFor.
struct ParallelForOptions {
  /// Total workers including the calling thread. 0 = pool size + 1;
  /// 1 = serial.
  size_t parallelism = 0;
  /// Morsel-size floor. Ranges shorter than 2 x this run serially; larger
  /// ranges are split into morsels of at least this many indices.
  size_t min_morsel_size = 1024;
  /// Morsel-count ceiling per worker: morsels are sized so that roughly
  /// this many fall to each worker, bounding cursor contention while
  /// keeping enough slack for load balancing.
  size_t max_morsels_per_worker = 8;
  /// Pool to borrow helpers from; nullptr = ThreadPool::Shared().
  ThreadPool* pool = nullptr;
};

/// What a ParallelFor invocation actually did (metrics feed).
struct ParallelForStats {
  bool parallel = false;  ///< False when the body ran inline serially.
  size_t workers = 1;     ///< Workers that could participate.
  size_t morsels = 1;     ///< Morsels the range was split into.
};

/// \brief Runs body(begin, end) over disjoint sub-ranges covering [0, n).
///
/// Serial (single inline body(0, n) call) when n < 2 x min_morsel_size,
/// when parallelism resolves to <= 1, or when called from a pool worker.
/// Otherwise the range is processed by up to `parallelism` threads; the
/// body must be safe to invoke concurrently on disjoint ranges. Exceptions
/// thrown by the body are rethrown on the calling thread (first one wins).
/// Blocks until every morsel has been processed.
ParallelForStats ParallelFor(
    size_t n, const ParallelForOptions& options,
    const std::function<void(size_t, size_t)>& body);

}  // namespace expdb

#endif  // EXPDB_COMMON_THREAD_POOL_H_
