#include "common/str_util.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace expdb {

std::string JoinStrings(const std::vector<std::string>& items,
                        std::string_view sep) {
  std::string out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) out += sep;
    first = false;
    out += item;
  }
  return out;
}

std::string PadRight(std::string_view s, size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string PadLeft(std::string_view s, size_t width) {
  std::string out;
  if (s.size() < width) out.append(width - s.size(), ' ');
  out += s;
  return out;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string AsciiToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool AsciiEqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::optional<int64_t> ParseInt64(std::string_view s) {
  int64_t value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::optional<double> ParseDouble(std::string_view s) {
  if (s.empty()) return std::nullopt;
  // std::from_chars for double is available in libstdc++ 11+; use it.
  double value = 0.0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

}  // namespace expdb
