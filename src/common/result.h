// Result<T>: value-or-Status, the return type of fallible ExpDB functions
// that produce a value. Mirrors arrow::Result / absl::StatusOr.

#ifndef EXPDB_COMMON_RESULT_H_
#define EXPDB_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace expdb {

/// \brief Either a value of type T or an error Status.
///
/// A Result constructed from an OK status is a programming error and is
/// converted to an Internal error so that misuse is observable rather than
/// undefined.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status (implicit, enables `return status;`).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; Status::OK() when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Access the held value. Must hold a value.
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// Moves the held value out. Must hold a value.
  T MoveValue() {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace expdb

/// Propagates the error of a Result expression, else assigns its value.
#define EXPDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).MoveValue()

#define EXPDB_CONCAT_IMPL(a, b) a##b
#define EXPDB_CONCAT(a, b) EXPDB_CONCAT_IMPL(a, b)

#define EXPDB_ASSIGN_OR_RETURN(lhs, expr) \
  EXPDB_ASSIGN_OR_RETURN_IMPL(            \
      EXPDB_CONCAT(_expdb_result_, __LINE__), lhs, expr)

#endif  // EXPDB_COMMON_RESULT_H_
