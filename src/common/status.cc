#include "common/status.h"

namespace expdb {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace expdb
