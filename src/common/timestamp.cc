#include "common/timestamp.h"

namespace expdb {

std::string Timestamp::ToString() const {
  if (IsInfinite()) return "inf";
  return std::to_string(ticks_);
}

std::ostream& operator<<(std::ostream& os, const Timestamp& t) {
  return os << t.ToString();
}

}  // namespace expdb
