#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace expdb {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(NextUint64());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t draw;
  do {
    draw = NextUint64();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % span);
}

double Rng::UniformDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

ZipfDistribution::ZipfDistribution(int64_t n, double skew) : n_(n) {
  assert(n >= 1);
  cdf_.reserve(static_cast<size_t>(n));
  double total = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), skew);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
}

int64_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int64_t>(it - cdf_.begin()) + 1;
}

}  // namespace expdb
