// Status: error-handling primitive used throughout ExpDB.
//
// ExpDB library code does not throw exceptions; fallible operations return
// Status (or Result<T>, see result.h). The design follows the idiom used by
// Arrow and RocksDB: a small copyable object holding a code and a message,
// with an inexpensive OK fast path.

#ifndef EXPDB_COMMON_STATUS_H_
#define EXPDB_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace expdb {

/// Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed something malformed.
  kNotFound = 2,          ///< Named entity (relation, attribute, ...) absent.
  kAlreadyExists = 3,     ///< Name collision on creation.
  kTypeError = 4,         ///< Schema/type mismatch (e.g. union-incompatible).
  kOutOfRange = 5,        ///< Index or time out of the valid domain.
  kParseError = 6,        ///< SQL text could not be parsed.
  kNotImplemented = 7,    ///< Feature intentionally unsupported.
  kConstraintViolation = 8,  ///< Integrity constraint rejected an operation.
  kInternal = 9,          ///< Invariant breakage inside the engine.
};

/// \brief Returns a stable human-readable name for a status code.
std::string_view StatusCodeToString(StatusCode code);

/// \brief A success-or-error outcome carried by value.
///
/// The OK state is represented by a null internal pointer, so returning and
/// checking `Status::OK()` costs no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(code, std::move(message))) {}

  /// \brief Returns an OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return state_ == nullptr; }

  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }

  /// The error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ == nullptr ? kEmpty : state_->message;
  }

  /// \brief Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    State(StatusCode c, std::string m) : code(c), message(std::move(m)) {}
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<State> state_;  // null == OK
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace expdb

/// Propagates a non-OK Status to the caller.
#define EXPDB_RETURN_NOT_OK(expr)                \
  do {                                           \
    ::expdb::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (false)

#endif  // EXPDB_COMMON_STATUS_H_
