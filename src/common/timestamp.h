// Timestamp: the totally ordered time domain of the paper (Sec. 2.2).
//
// Finite times are identified with the non-negative integers; the symbol
// infinity is larger than every finite time and is the expiration time of
// tuples that never expire. Arithmetic saturates at infinity so that
// `t + ttl` is always well-defined.

#ifndef EXPDB_COMMON_TIMESTAMP_H_
#define EXPDB_COMMON_TIMESTAMP_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <limits>
#include <ostream>
#include <string>

namespace expdb {

/// \brief A point on the discrete time axis, or infinity.
///
/// The paper's time domain "comprises times or timestamps including the
/// symbol ∞ that denotes infinity and is larger than any other time value;
/// for simplicity, we identify finite times with the non-negative integers."
class Timestamp {
 public:
  /// Constructs time 0.
  constexpr Timestamp() : ticks_(0) {}

  /// Constructs a finite time. Negative inputs are clamped to 0; the
  /// reserved infinity representation cannot be produced this way.
  constexpr explicit Timestamp(int64_t ticks)
      : ticks_(ticks < 0 ? 0 : (ticks >= kInfinityTicks ? kInfinityTicks - 1
                                                        : ticks)) {}

  /// \brief The time larger than every finite time (a tuple that never
  /// expires has texp == Infinity()).
  static constexpr Timestamp Infinity() {
    Timestamp t;
    t.ticks_ = kInfinityTicks;
    return t;
  }

  /// \brief Time zero, the origin used throughout the paper's examples.
  static constexpr Timestamp Zero() { return Timestamp(0); }

  constexpr bool IsInfinite() const { return ticks_ == kInfinityTicks; }
  constexpr bool IsFinite() const { return !IsInfinite(); }

  /// The underlying tick count. Must be finite.
  constexpr int64_t ticks() const { return ticks_; }

  constexpr auto operator<=>(const Timestamp& other) const = default;

  /// \brief Saturating addition of a duration; infinity absorbs.
  constexpr Timestamp operator+(int64_t delta) const {
    if (IsInfinite()) return Infinity();
    // Check before adding: signed overflow must never happen.
    if (delta > 0 && ticks_ > kInfinityTicks - 1 - delta) {
      Timestamp t;
      t.ticks_ = kInfinityTicks - 1;
      return t;
    }
    return Timestamp(ticks_ + delta);
  }

  Timestamp& operator+=(int64_t delta) { return *this = *this + delta; }

  /// \brief The immediately following instant (saturates below infinity).
  constexpr Timestamp Next() const { return *this + 1; }

  /// \brief min over the time domain (arbitrary arity via std::min).
  static Timestamp Min(Timestamp a, Timestamp b) { return std::min(a, b); }
  static Timestamp Min(std::initializer_list<Timestamp> ts) {
    return std::min(ts);
  }

  /// \brief max over the time domain.
  static Timestamp Max(Timestamp a, Timestamp b) { return std::max(a, b); }
  static Timestamp Max(std::initializer_list<Timestamp> ts) {
    return std::max(ts);
  }

  /// Renders the tick count, or "inf" for infinity.
  std::string ToString() const;

 private:
  static constexpr int64_t kInfinityTicks =
      std::numeric_limits<int64_t>::max();
  int64_t ticks_;
};

std::ostream& operator<<(std::ostream& os, const Timestamp& t);

}  // namespace expdb

template <>
struct std::hash<expdb::Timestamp> {
  size_t operator()(const expdb::Timestamp& t) const noexcept {
    return t.IsInfinite() ? static_cast<size_t>(-1)
                          : std::hash<int64_t>{}(t.ticks());
  }
};

#endif  // EXPDB_COMMON_TIMESTAMP_H_
