// Deterministic random number generation for workload synthesis.
//
// All benchmark and property-test workloads are generated from explicit
// seeds through this module, so every experiment in EXPERIMENTS.md is
// exactly reproducible. The engine itself never consumes randomness.

#ifndef EXPDB_COMMON_RNG_H_
#define EXPDB_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace expdb {

/// \brief A small, fast, deterministic PRNG (splitmix64 core).
///
/// splitmix64 passes BigCrush and needs only a 64-bit state, which keeps
/// seeded workload generation trivially reproducible across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64 random bits.
  uint64_t NextUint64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  uint64_t state_;
};

/// \brief Zipf-distributed ranks in [1, n] with skew parameter s.
///
/// Used to synthesize skewed group keys and TTLs; precomputes the CDF once
/// so draws are O(log n).
class ZipfDistribution {
 public:
  ZipfDistribution(int64_t n, double skew);

  /// Draws a rank in [1, n]; rank 1 is the most frequent.
  int64_t Sample(Rng& rng) const;

  int64_t n() const { return n_; }

 private:
  int64_t n_;
  std::vector<double> cdf_;
};

}  // namespace expdb

#endif  // EXPDB_COMMON_RNG_H_
