// Value: a dynamically typed attribute value (the attribute domain D of the
// paper's data model). The algebra operates over Int64, Double, and String
// values; Null exists only for the SQL layer's display defaults — the core
// algebra never produces it (the paper scopes out three-valued logic).

#ifndef EXPDB_COMMON_VALUE_H_
#define EXPDB_COMMON_VALUE_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>

#include "common/result.h"

namespace expdb {

/// Runtime type tag of a Value.
enum class ValueType {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

/// \brief Returns the lower-case SQL-ish name of a value type
/// ("null", "int", "double", "string").
std::string_view ValueTypeToString(ValueType type);

/// \brief One attribute value; an element of the attribute domain D.
///
/// Values form a total order: Null < numerics < strings, with Int64 and
/// Double compared numerically against each other so that mixed-type
/// arithmetic behaves intuitively in aggregates and predicates.
class Value {
 public:
  /// Constructs the null value.
  Value() : repr_(std::monostate{}) {}

  Value(int64_t v) : repr_(v) {}                 // NOLINT(runtime/explicit)
  Value(int v) : repr_(static_cast<int64_t>(v)) {}  // NOLINT
  Value(double v) : repr_(v) {}                  // NOLINT
  Value(std::string v) : repr_(std::move(v)) {}  // NOLINT
  Value(const char* v) : repr_(std::string(v)) {}  // NOLINT

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(repr_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_int64() const { return type() == ValueType::kInt64; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_numeric() const { return is_int64() || is_double(); }

  /// The held integer. Must hold Int64.
  int64_t AsInt64() const { return std::get<int64_t>(repr_); }
  /// The held double. Must hold Double.
  double AsDouble() const { return std::get<double>(repr_); }
  /// The held string. Must hold String.
  const std::string& AsString() const { return std::get<std::string>(repr_); }

  /// \brief Numeric view of the value (Int64 widened to double).
  /// Returns a TypeError for nulls and strings.
  Result<double> ToNumeric() const;

  /// \brief Three-way comparison defining the total order described above.
  std::strong_ordering Compare(const Value& other) const;

  bool operator==(const Value& other) const {
    return Compare(other) == std::strong_ordering::equal;
  }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const {
    return Compare(other) == std::strong_ordering::less;
  }
  bool operator<=(const Value& other) const { return !(other < *this); }
  bool operator>(const Value& other) const { return other < *this; }
  bool operator>=(const Value& other) const { return !(*this < other); }

  /// \brief Checked addition for numeric values (used by sum/avg).
  Result<Value> Add(const Value& other) const;

  /// Hash consistent with operator== (numeric 3 and 3.0 hash equal).
  size_t Hash() const;

  /// Renders the value as SQL-ish literal text (strings unquoted).
  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> repr_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace expdb

template <>
struct std::hash<expdb::Value> {
  size_t operator()(const expdb::Value& v) const noexcept { return v.Hash(); }
};

#endif  // EXPDB_COMMON_VALUE_H_
