#include "common/value.h"

#include <cmath>

namespace expdb {

namespace {

// Rank used to order values of different, non-interconvertible types.
// Numerics share a rank so that Int64 and Double compare numerically.
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 1;
    case ValueType::kString:
      return 2;
  }
  return 3;
}

std::strong_ordering OrderDoubles(double a, double b) {
  // Values never hold NaN (checked in Add and by the SQL layer), so a
  // strong ordering on partial_ordering inputs is safe.
  if (a < b) return std::strong_ordering::less;
  if (a > b) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

}  // namespace

std::string_view ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

Result<double> Value::ToNumeric() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(AsInt64());
    case ValueType::kDouble:
      return AsDouble();
    default:
      return Status::TypeError("value '" + ToString() + "' is not numeric");
  }
}

std::strong_ordering Value::Compare(const Value& other) const {
  const int ra = TypeRank(type());
  const int rb = TypeRank(other.type());
  if (ra != rb) return ra <=> rb;

  switch (type()) {
    case ValueType::kNull:
      return std::strong_ordering::equal;
    case ValueType::kInt64:
      if (other.is_int64()) return AsInt64() <=> other.AsInt64();
      return OrderDoubles(static_cast<double>(AsInt64()), other.AsDouble());
    case ValueType::kDouble:
      if (other.is_double()) return OrderDoubles(AsDouble(), other.AsDouble());
      return OrderDoubles(AsDouble(), static_cast<double>(other.AsInt64()));
    case ValueType::kString:
      return AsString().compare(other.AsString()) <=> 0;
  }
  return std::strong_ordering::equal;
}

Result<Value> Value::Add(const Value& other) const {
  if (is_int64() && other.is_int64()) {
    return Value(AsInt64() + other.AsInt64());
  }
  EXPDB_ASSIGN_OR_RETURN(double a, ToNumeric());
  EXPDB_ASSIGN_OR_RETURN(double b, other.ToNumeric());
  const double sum = a + b;
  if (std::isnan(sum)) {
    return Status::OutOfRange("addition produced NaN");
  }
  return Value(sum);
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt64:
      return std::hash<double>{}(static_cast<double>(AsInt64()));
    case ValueType::kDouble: {
      // Hash integral doubles like the equal Int64 (3.0 == 3 must hash
      // identically to satisfy the hash/equality contract).
      const double d = AsDouble();
      return std::hash<double>{}(d);
    }
    case ValueType::kString:
      return std::hash<std::string>{}(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble: {
      std::string s = std::to_string(AsDouble());
      // Trim trailing zeros but keep one digit after the point.
      size_t dot = s.find('.');
      if (dot != std::string::npos) {
        size_t last = s.find_last_not_of('0');
        if (last == dot) last = dot + 1;
        s.erase(last + 1);
      }
      return s;
    }
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace expdb
