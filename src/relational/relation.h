// Relation: a set of tuples, each carrying an expiration time texp.
//
// This is the paper's data model (Sec. 2.2): the classical relational model
// is left unaltered except that every relation R comes with a function
// texp_R(·) from tuples to expiration times, and a function expτ that
// restricts R to the tuples unexpired at time τ:
//
//     expτ(R) = { r | r ∈ R ∧ texp_R(r) > τ }
//
// A tuple with no expiration has texp = ∞, in which case every operator in
// the algebra behaves exactly like its textbook equivalent.
//
// Storage layout (docs/PERFORMANCE.md): tuples live in a flat dense
// `std::vector<Entry>` — scans (`ForEach`, operator pipelines, morsel
// chunking for the parallel evaluator) are contiguous sweeps — with a
// separate open-addressing hash index (linear probing over the hash cached
// on each Tuple) for point lookups. Erase is swap-with-last, so the dense
// array never has holes; the index slot of the moved entry is patched in
// O(1) expected time.

#ifndef EXPDB_RELATIONAL_RELATION_H_
#define EXPDB_RELATIONAL_RELATION_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/timestamp.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace expdb {

/// \brief A relation with per-tuple expiration times (set semantics).
///
/// Re-inserting a tuple that is already present keeps the later of the two
/// expiration times — the same max rule the algebra uses for duplicate
/// elimination in πexp and for ∪exp — so insertion is idempotent and
/// monotone in lifetime.
///
/// Thread-safety: const methods (lookups, scans, `entries()`) are safe to
/// call concurrently from any number of threads as long as no thread
/// mutates the relation — the parallel evaluator relies on this.
class Relation {
 public:
  /// One stored tuple with its expiration time. Entries are densely packed
  /// in insertion order (perturbed by swap-with-last erases).
  struct Entry {
    Tuple tuple;
    Timestamp texp;
  };

  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  // Delta history is bound to the identity of one Relation object (see
  // EnableDeltaTracking): moves preserve it, copies start untracked — a
  // copy is a new body of data whose future mutations the original's
  // subscribers never see.
  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;
  ~Relation();

  const Schema& schema() const { return schema_; }
  size_t arity() const { return schema_.arity(); }

  /// Number of stored tuples, including physically present expired ones.
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// \brief The dense entry array. Stable while the relation is not
  /// mutated; the parallel evaluator chunks this directly into morsels.
  const std::vector<Entry>& entries() const { return entries_; }

  /// \brief Pre-sizes the dense array and the hash index for `n` tuples.
  void Reserve(size_t n);

  /// \brief Builds a relation directly from a dense entry vector whose
  /// tuples are known to be pairwise distinct (the parallel operators
  /// guarantee this structurally). No schema checks, no duplicate merging.
  static Relation FromEntriesUnchecked(Schema schema,
                                       std::vector<Entry> entries);

  /// \brief Inserts `tuple` expiring at `texp` (∞ = never).
  ///
  /// Checks arity and types against the schema; Int64 values are coerced
  /// into Double attributes. On duplicate, keeps max(old texp, new texp).
  Status Insert(Tuple tuple, Timestamp texp = Timestamp::Infinity());

  /// \brief Inserts with a time-to-live relative to `now`.
  Status InsertWithTtl(Tuple tuple, Timestamp now, int64_t ttl);

  /// \brief Inserts without schema checks and overwriting any existing
  /// expiration time. For engine-internal use (operators produce already
  /// type-checked tuples and must control texp exactly).
  void InsertUnchecked(Tuple tuple, Timestamp texp);

  /// \brief Inserts without schema checks, keeping max(old, new) texp on
  /// duplicates — the duplicate-elimination rule of πexp and ∪exp.
  void MergeMaxUnchecked(Tuple tuple, Timestamp texp);

  /// \brief Removes `tuple` regardless of its expiration state.
  /// \return true iff the tuple was present.
  bool Erase(const Tuple& tuple);

  /// \brief texp_R(r). nullopt if r ∉ R.
  std::optional<Timestamp> GetTexp(const Tuple& tuple) const;

  /// \brief True iff the tuple is stored (expired or not).
  bool Contains(const Tuple& tuple) const {
    return FindEntry(tuple) != kNotFound;
  }

  /// \brief True iff tuple ∈ expτ(R).
  bool ContainsUnexpired(const Tuple& tuple, Timestamp tau) const;

  /// \brief expτ(R) as a new relation (texps preserved).
  Relation UnexpiredAt(Timestamp tau) const;

  /// \brief Visits every tuple of expτ(R) with its texp.
  void ForEachUnexpired(
      Timestamp tau,
      const std::function<void(const Tuple&, Timestamp)>& fn) const;

  /// \brief Visits every stored tuple (including expired) with its texp.
  void ForEach(
      const std::function<void(const Tuple&, Timestamp)>& fn) const;

  /// \brief |expτ(R)|.
  size_t CountUnexpiredAt(Timestamp tau) const;

  /// \brief Physically removes every tuple with texp <= tau.
  /// \return the removed tuples with their expiration times, sorted by
  /// (texp, tuple) — the order in which they expired.
  std::vector<std::pair<Tuple, Timestamp>> RemoveExpired(Timestamp tau);

  /// \brief Smallest finite texp strictly greater than `tau`; nullopt when
  /// no unexpired tuple has a finite expiration. This is the next instant
  /// at which expτ(R) changes.
  std::optional<Timestamp> NextExpirationAfter(Timestamp tau) const;

  /// \brief Deterministic snapshot sorted by (tuple); used by printers and
  /// tests.
  std::vector<std::pair<Tuple, Timestamp>> SortedEntries() const;

  /// \brief An upper bound on the expiration time of every stored tuple:
  /// texp_R(r) <= texp_upper_bound() for all r ∈ R. Maintained on insert
  /// (never lowered by erases, so it may overestimate after deletions —
  /// that direction is always safe). The planner uses it to prune whole
  /// subtrees whose every input is already expired at τ: if
  /// texp_upper_bound() <= τ then expτ(R) = ∅.
  Timestamp texp_upper_bound() const { return max_texp_; }

  // --- per-epoch delta capture (docs/PERFORMANCE.md §6) -------------------
  //
  // Incremental view maintenance needs the *stream* of explicit mutations
  // (the predecessor TR frames expiration itself as a stream of deletions;
  // here the stream is the explicit inserts/deletes the paper's no-update
  // assumption excludes). When tracking is enabled, every mutation is
  // recorded as one epoch in a bounded ring of DeltaBatches:
  //
  //  * a fresh insert       -> {epoch, inserted=[t@texp],  deleted=[]}
  //  * an effective texp
  //    change on duplicate  -> {epoch, inserted=[t@new],   deleted=[t@old]}
  //  * an erase             -> {epoch, inserted=[],        deleted=[t@old]}
  //
  // Physical expiration (RemoveExpired) is NOT recorded: removing tuples
  // with texp <= τ never changes expτ' for any τ' >= τ, so consumers that
  // always read through expτ see no difference. Clear() and attribute
  // renames break the history (consumers must fall back to recomputation).
  // Ring overflow trims the oldest epochs; DeltasSince reports the loss
  // instead of returning a partial stream.

  /// One recorded mutation epoch. `deleted` precedes `inserted` when both
  /// are non-empty (a texp change is delete-old-then-insert-new).
  struct DeltaBatch {
    uint64_t epoch = 0;
    std::vector<Entry> inserted;
    std::vector<Entry> deleted;
  };

  static constexpr size_t kDefaultDeltaRingCapacity = 4096;

  /// \brief Starts recording per-epoch deltas (idempotent; an existing log
  /// is kept). Assigns a process-unique instance id on first enable.
  ///
  /// `const` because the log is bookkeeping *about* mutations, not data:
  /// read paths never consult it, and consumers (materialized views) only
  /// hold const access to base relations. Safe against concurrent enables
  /// (first enable wins; the log pointer is published with an atomic
  /// release store) — concurrent readers holding only a shared lock may
  /// race through here via the result cache. Recording and DeltasSince
  /// still require the caller's usual reader/writer exclusion.
  void EnableDeltaTracking(
      size_t ring_capacity = kDefaultDeltaRingCapacity) const;

  bool delta_tracking() const { return delta_log() != nullptr; }

  /// \brief Process-unique identity of this tracked relation; 0 when
  /// tracking is disabled. Consumers pair it with delta_epoch() as a
  /// cursor — an id mismatch means "different body of data, recompute".
  uint64_t delta_instance_id() const;

  /// \brief Epoch of the most recent recorded mutation (0 = none yet).
  uint64_t delta_epoch() const;

  /// \brief The ordered mutation batches recorded in epochs
  /// (`since`, delta_epoch()]. nullopt when the history is unavailable:
  /// tracking disabled, the ring trimmed past `since`, the history was
  /// broken (Clear/rename), or `since` is from another relation's clock.
  std::optional<std::vector<DeltaBatch>> DeltasSince(uint64_t since) const;

  /// \brief Snapshot of the delta clock: the pair a consumer stores when
  /// it materializes a derived result over this base. The base is
  /// unchanged since the snapshot iff a later cursor compares equal —
  /// Clear()/rename bump the epoch when breaking history, and copies get
  /// a fresh instance id, so every stale-data hazard shows up as a
  /// cursor mismatch.
  struct DeltaCursor {
    uint64_t instance_id = 0;  ///< 0 = tracking disabled at snapshot time
    uint64_t epoch = 0;

    friend bool operator==(const DeltaCursor& a, const DeltaCursor& b) {
      return a.instance_id == b.instance_id && a.epoch == b.epoch;
    }
    friend bool operator!=(const DeltaCursor& a, const DeltaCursor& b) {
      return !(a == b);
    }
  };

  DeltaCursor delta_cursor() const {
    return DeltaCursor{delta_instance_id(), delta_epoch()};
  }

  /// \brief Set equality of expτ(·) of both relations, ignoring texp.
  static bool ContentsEqualAt(const Relation& a, const Relation& b,
                              Timestamp tau);

  /// \brief Equality of expτ(·) of both relations including texp values.
  static bool EqualAt(const Relation& a, const Relation& b, Timestamp tau);

  /// \brief Removes all tuples. Breaks any recorded delta history (a
  /// wholesale wipe cannot be represented as a bounded delta stream).
  void Clear() {
    entries_.clear();
    slots_.clear();
    tombstones_ = 0;
    max_texp_ = Timestamp::Zero();
    BreakDeltaHistory();
  }

  /// \brief Renames the schema's attributes (arity must match); types and
  /// tuples are unchanged. Used by the SQL layer for AS aliases.
  Status RenameAttributes(const std::vector<std::string>& names);

  std::string ToString() const;

 private:
  static constexpr size_t kNotFound = static_cast<size_t>(-1);
  // Index slot states; non-negative values are entry indices.
  static constexpr int64_t kEmpty = -1;
  static constexpr int64_t kTombstone = -2;

  Status CheckAndCoerce(Tuple* tuple) const;

  /// Entry index of `tuple`, or kNotFound.
  size_t FindEntry(const Tuple& tuple) const;
  /// Index slot holding `tuple`'s entry, or kNotFound.
  size_t FindSlot(const Tuple& tuple) const;
  /// Appends (tuple, texp) and indexes it; returns (entry index, inserted).
  /// On duplicate, nothing is appended and the existing index is returned.
  std::pair<size_t, bool> InsertEntry(Tuple tuple, Timestamp texp);
  /// Removes the entry at `entry_idx` (whose index slot is `slot`) by
  /// swap-with-last, patching the moved entry's slot.
  void EraseAt(size_t entry_idx, size_t slot);
  /// Grows/rebuilds the index so it can hold at least `n` live entries.
  void Rehash(size_t n);
  /// Ensures capacity for one more insert.
  void EnsureSlotCapacity();
  /// Rebuilds slots_ from entries_, which must be duplicate-free.
  void RebuildIndex();

  // --- delta recording (no-ops when tracking is disabled) -----------------
  struct DeltaLog {
    uint64_t instance_id = 0;
    uint64_t epoch = 0;  ///< epoch of the newest recorded batch
    uint64_t floor = 0;  ///< history is complete for cursors >= floor
    size_t capacity = kDefaultDeltaRingCapacity;
    std::deque<DeltaBatch> batches;
  };
  void RecordDeltaInsert(const Tuple& tuple, Timestamp texp);
  void RecordDeltaUpdate(const Tuple& tuple, Timestamp old_texp,
                         Timestamp new_texp);
  void RecordDeltaErase(const Tuple& tuple, Timestamp old_texp);
  void TrimDeltaRing();
  /// Invalidates all outstanding cursors (wholesale change happened).
  void BreakDeltaHistory();

  /// The published delta log, or nullptr when tracking is disabled.
  /// Acquire load pairs with the release store in EnableDeltaTracking so
  /// concurrent first-enables are safe under a shared (reader) lock.
  DeltaLog* delta_log() const {
    return delta_.load(std::memory_order_acquire);
  }

  Schema schema_;
  std::vector<Entry> entries_;
  /// Open-addressing index: power-of-two sized, linear probing, entry
  /// index or kEmpty/kTombstone per slot. Empty vector when no entries.
  std::vector<int64_t> slots_;
  size_t tombstones_ = 0;
  /// Upper bound on every stored texp; see texp_upper_bound().
  Timestamp max_texp_ = Timestamp::Zero();
  /// Per-epoch mutation log; null until EnableDeltaTracking. `mutable`
  /// because enabling is metadata-only and consumers hold const access;
  /// an atomic pointer (owned, deleted in ~Relation) so a first enable
  /// racing other readers publishes safely (see EnableDeltaTracking).
  mutable std::atomic<DeltaLog*> delta_{nullptr};
};

}  // namespace expdb

#endif  // EXPDB_RELATIONAL_RELATION_H_
