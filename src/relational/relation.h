// Relation: a set of tuples, each carrying an expiration time texp.
//
// This is the paper's data model (Sec. 2.2): the classical relational model
// is left unaltered except that every relation R comes with a function
// texp_R(·) from tuples to expiration times, and a function expτ that
// restricts R to the tuples unexpired at time τ:
//
//     expτ(R) = { r | r ∈ R ∧ texp_R(r) > τ }
//
// A tuple with no expiration has texp = ∞, in which case every operator in
// the algebra behaves exactly like its textbook equivalent.
//
// Storage layout (docs/PERFORMANCE.md §8): tuples live in dense entry
// segments. A relation is either
//
//  * flat — one unbucketed segment, the classic contiguous array. This is
//    the default, and what the operators' materialized results use: scans
//    are a single contiguous sweep and `entries()` exposes the array
//    directly for morsel chunking.
//  * segmented — entries are physically partitioned by expiration-time
//    bucket (floor(texp / bucket_width)), with a dedicated segment for
//    never-expiring (texp = ∞) tuples. Each segment carries conservative
//    [min_texp, max_texp] bounds, so a scan can decide once per segment
//    whether the segment is fully expired (skip it), fully live (copy it
//    without per-tuple texp checks), or straddling τ (filter). Physical
//    expiration drops whole expired segments in O(1) each — no per-tuple
//    swap, no survivor movement, no index rebuild (the companion TR's
//    "organize storage by expiration time" principle). Base relations in
//    a Database use this mode.
//
// A single open-addressing hash index (linear probing over the hash cached
// on each Tuple) spans all segments for point lookups; slots hold packed
// (segment id, offset) handles. Erase is swap-with-last within the owning
// segment, so segments never have holes; the slot of the moved entry is
// patched in O(1) expected time. Dropping a whole segment merely retires
// its id: slots still pointing at it are recognized as stale on probe and
// recycled like tombstones (the next rehash purges them in bulk).

#ifndef EXPDB_RELATIONAL_RELATION_H_
#define EXPDB_RELATIONAL_RELATION_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/timestamp.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace expdb {

/// \brief A relation with per-tuple expiration times (set semantics).
///
/// Re-inserting a tuple that is already present keeps the later of the two
/// expiration times — the same max rule the algebra uses for duplicate
/// elimination in πexp and for ∪exp — so insertion is idempotent and
/// monotone in lifetime.
///
/// Thread-safety: const methods (lookups, scans, `entries()`, segment
/// views) are safe to call concurrently from any number of threads as long
/// as no thread mutates the relation — the parallel evaluator relies on
/// this.
class Relation {
 public:
  /// One stored tuple with its expiration time. Entries are densely packed
  /// per segment in insertion order (perturbed by swap-with-last erases).
  struct Entry {
    Tuple tuple;
    Timestamp texp;
  };

  /// Tuning for segmented (expiration-partitioned) storage.
  struct SegmentOptions {
    /// Ticks per finite expiration bucket. Small initial widths give fine
    /// pruning granularity on short-lived data; the width doubles
    /// automatically whenever the finite-segment count would exceed
    /// `max_segments`, so wide-spread workloads converge to
    /// ~range/max_segments ticks per bucket.
    int64_t bucket_width = 8;
    /// Soft cap on simultaneously live finite segments.
    size_t max_segments = 64;
  };

  /// \brief Scan-facing view of one storage segment: a contiguous entry
  /// range plus conservative expiration bounds. For every stored entry e
  /// of the segment, min_texp <= texp(e) <= max_texp; the bounds may be
  /// loose after erases (min may understate, max may overstate — both are
  /// the safe directions). Classification against a scan's τ:
  ///
  ///   max_texp <= τ  → every entry expired: skip the segment entirely;
  ///   min_texp  > τ  → every entry live: copy without per-tuple checks;
  ///   otherwise      → straddling: per-tuple texp > τ filter.
  struct SegmentView {
    const Entry* data = nullptr;
    size_t size = 0;
    Timestamp min_texp = Timestamp::Infinity();
    Timestamp max_texp = Timestamp::Zero();
  };

  /// What a bulk expiration pass removed (see DropExpired).
  struct DropResult {
    size_t tuples = 0;    ///< entries physically removed
    size_t segments = 0;  ///< whole segments dropped in O(1)
  };

  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  // Delta history is bound to the identity of one Relation object (see
  // EnableDeltaTracking): moves preserve it, copies start untracked — a
  // copy is a new body of data whose future mutations the original's
  // subscribers never see.
  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;
  ~Relation();

  const Schema& schema() const { return schema_; }
  size_t arity() const { return schema_.arity(); }

  /// Number of stored tuples, including physically present expired ones.
  size_t size() const { return total_entries_; }
  bool empty() const { return total_entries_ == 0; }

  /// \brief The dense entry array of a *flat* relation. Stable while the
  /// relation is not mutated; the parallel evaluator chunks this directly
  /// into morsels. Calling it on a segmented relation is a contract
  /// violation (entries live in multiple arrays) — scan segmented storage
  /// through SegmentCount()/GetSegment() instead.
  const std::vector<Entry>& entries() const {
    assert(!segmented_ && "entries() is flat-storage only; use GetSegment");
    return segments_.empty() ? EmptyEntries() : segments_[0]->entries;
  }

  // --- expiration-partitioned storage (docs/PERFORMANCE.md §8) ------------

  /// True when this relation stores entries partitioned by texp bucket.
  bool segmented() const { return segmented_; }

  /// \brief Switches to segmented storage (idempotent on an already
  /// segmented relation except that new options take effect). Existing
  /// entries are redistributed into their buckets and the hash index is
  /// rebuilt; O(n). Database::CreateRelation applies this to base tables.
  void SetSegmented(SegmentOptions options);
  void SetSegmented() { SetSegmented(SegmentOptions()); }

  /// Number of storage segments (flat relations have 0 or 1). Segments
  /// are ordered by ascending bucket; the ∞ segment, if any, comes last.
  size_t SegmentCount() const { return segments_.size(); }

  /// The i-th segment as a scan view. i < SegmentCount().
  SegmentView GetSegment(size_t i) const {
    const Segment& s = *segments_[i];
    return SegmentView{s.entries.data(), s.entries.size(), s.min_texp,
                       s.max_texp};
  }

  /// \brief Physically removes every tuple with texp <= tau — the fast
  /// bulk path: fully-expired segments are dropped whole in O(1) each (no
  /// per-tuple swap, no survivor movement, no index rebuild; their index
  /// slots are lazily recycled), fully-live segments are skipped without
  /// being scanned, and only segments straddling tau pay a per-tuple
  /// swap-erase. Does not enumerate the removed tuples — callers that
  /// must fire per-tuple expiration triggers use RemoveExpired instead —
  /// and, like RemoveExpired, records nothing in the delta ring (removing
  /// tuples with texp <= τ never changes expτ' for any τ' >= τ).
  DropResult DropExpired(Timestamp tau);

  /// \brief Pre-sizes the dense array and the hash index for `n` tuples.
  void Reserve(size_t n);

  /// \brief Builds a flat relation directly from a dense entry vector
  /// whose tuples are known to be pairwise distinct (the parallel
  /// operators guarantee this structurally). No schema checks, no
  /// duplicate merging — and no hash index: the build is deferred until
  /// the first point lookup or mutation, since operator results are
  /// mostly scanned forward and discarded.
  static Relation FromEntriesUnchecked(Schema schema,
                                       std::vector<Entry> entries);

  /// \brief Inserts `tuple` expiring at `texp` (∞ = never).
  ///
  /// Checks arity and types against the schema; Int64 values are coerced
  /// into Double attributes. On duplicate, keeps max(old texp, new texp).
  Status Insert(Tuple tuple, Timestamp texp = Timestamp::Infinity());

  /// \brief Inserts with a time-to-live relative to `now`.
  Status InsertWithTtl(Tuple tuple, Timestamp now, int64_t ttl);

  /// \brief Inserts without schema checks and overwriting any existing
  /// expiration time. For engine-internal use (operators produce already
  /// type-checked tuples and must control texp exactly).
  void InsertUnchecked(Tuple tuple, Timestamp texp);

  /// \brief Inserts without schema checks, keeping max(old, new) texp on
  /// duplicates — the duplicate-elimination rule of πexp and ∪exp.
  void MergeMaxUnchecked(Tuple tuple, Timestamp texp);

  /// \brief Removes `tuple` regardless of its expiration state.
  /// \return true iff the tuple was present.
  bool Erase(const Tuple& tuple);

  /// \brief texp_R(r). nullopt if r ∉ R.
  std::optional<Timestamp> GetTexp(const Tuple& tuple) const;

  /// \brief True iff the tuple is stored (expired or not).
  bool Contains(const Tuple& tuple) const {
    return FindSlot(tuple) != kNotFound;
  }

  /// \brief True iff tuple ∈ expτ(R).
  bool ContainsUnexpired(const Tuple& tuple, Timestamp tau) const;

  /// \brief expτ(R) as a new (flat) relation (texps preserved). Segment
  /// bounds prune the sweep: fully-expired segments are skipped,
  /// fully-live segments are copied without per-tuple checks.
  Relation UnexpiredAt(Timestamp tau) const;

  /// \brief Visits every tuple of expτ(R) with its texp.
  void ForEachUnexpired(
      Timestamp tau,
      const std::function<void(const Tuple&, Timestamp)>& fn) const;

  /// \brief Visits every stored tuple (including expired) with its texp.
  void ForEach(
      const std::function<void(const Tuple&, Timestamp)>& fn) const;

  /// \brief |expτ(R)|. Fully-live / fully-expired segments contribute
  /// their size / zero without being scanned.
  size_t CountUnexpiredAt(Timestamp tau) const;

  /// \brief Occupancy of the storage at time τ, per segment class —
  /// the telemetry layer's expiration-pressure source. `expired_tuples`
  /// is the backlog awaiting physical drain (lazy removal keeps them
  /// stored; queries never see them). One sweep: fully-live and
  /// fully-expired segments are classified from their bounds without a
  /// per-tuple check; only straddling segments pay one.
  struct SegmentOccupancy {
    size_t live_segments = 0;        ///< min_texp > τ: every entry live
    size_t expired_segments = 0;     ///< max_texp <= τ: every entry expired
    size_t straddling_segments = 0;  ///< bounds bracket τ: mixed
    size_t live_tuples = 0;          ///< |expτ(R)|
    size_t expired_tuples = 0;       ///< stored − live: the drain backlog
  };
  SegmentOccupancy OccupancyAt(Timestamp tau) const;

  /// \brief Physically removes every tuple with texp <= tau.
  /// \return the removed tuples with their expiration times, sorted by
  /// (texp, tuple) — the order in which they expired. This is the
  /// trigger-feeding slow path; use DropExpired when the removed tuples
  /// are not needed. Also tightens segment bounds from the surviving
  /// entries of straddling segments.
  std::vector<std::pair<Tuple, Timestamp>> RemoveExpired(Timestamp tau);

  /// \brief Smallest finite texp strictly greater than `tau`; nullopt when
  /// no unexpired tuple has a finite expiration. This is the next instant
  /// at which expτ(R) changes.
  std::optional<Timestamp> NextExpirationAfter(Timestamp tau) const;

  /// \brief Deterministic snapshot sorted by (tuple); used by printers and
  /// tests.
  std::vector<std::pair<Tuple, Timestamp>> SortedEntries() const;

  /// \brief An upper bound on the expiration time of every stored tuple:
  /// texp_R(r) <= texp_upper_bound() for all r ∈ R. Derived from the live
  /// segments' max_texp bounds, so it *tightens* when expired segments
  /// are dropped (DropExpired) and when RemoveExpired re-derives the
  /// bounds of straddling segments from their survivors — point erases
  /// may still leave it an overestimate, which is the safe direction.
  /// The planner uses it to prune whole subtrees whose every input is
  /// already expired at τ: if texp_upper_bound() <= τ then expτ(R) = ∅.
  Timestamp texp_upper_bound() const {
    Timestamp bound = Timestamp::Zero();
    for (const auto& seg : segments_) {
      if (!seg->entries.empty()) {
        bound = Timestamp::Max(bound, seg->max_texp);
      }
    }
    return bound;
  }

  // --- per-epoch delta capture (docs/PERFORMANCE.md §6) -------------------
  //
  // Incremental view maintenance needs the *stream* of explicit mutations
  // (the predecessor TR frames expiration itself as a stream of deletions;
  // here the stream is the explicit inserts/deletes the paper's no-update
  // assumption excludes). When tracking is enabled, every mutation is
  // recorded as one epoch in a bounded ring of DeltaBatches:
  //
  //  * a fresh insert       -> {epoch, inserted=[t@texp],  deleted=[]}
  //  * an effective texp
  //    change on duplicate  -> {epoch, inserted=[t@new],   deleted=[t@old]}
  //  * an erase             -> {epoch, inserted=[],        deleted=[t@old]}
  //
  // Physical expiration (RemoveExpired and the segment bulk path
  // DropExpired) is NOT recorded: removing tuples with texp <= τ never
  // changes expτ' for any τ' >= τ, so consumers that always read through
  // expτ see no difference. Clear() and attribute renames break the
  // history (consumers must fall back to recomputation). Ring overflow
  // trims the oldest epochs; DeltasSince reports the loss instead of
  // returning a partial stream.

  /// One recorded mutation epoch. `deleted` precedes `inserted` when both
  /// are non-empty (a texp change is delete-old-then-insert-new).
  struct DeltaBatch {
    uint64_t epoch = 0;
    std::vector<Entry> inserted;
    std::vector<Entry> deleted;
  };

  static constexpr size_t kDefaultDeltaRingCapacity = 4096;

  /// \brief Starts recording per-epoch deltas (idempotent; an existing log
  /// is kept). Assigns a process-unique instance id on first enable.
  ///
  /// `const` because the log is bookkeeping *about* mutations, not data:
  /// read paths never consult it, and consumers (materialized views) only
  /// hold const access to base relations. Safe against concurrent enables
  /// (first enable wins; the log pointer is published with an atomic
  /// release store) — concurrent readers holding only a shared lock may
  /// race through here via the result cache. Recording and DeltasSince
  /// still require the caller's usual reader/writer exclusion.
  void EnableDeltaTracking(
      size_t ring_capacity = kDefaultDeltaRingCapacity) const;

  bool delta_tracking() const { return delta_log() != nullptr; }

  /// \brief Process-unique identity of this tracked relation; 0 when
  /// tracking is disabled. Consumers pair it with delta_epoch() as a
  /// cursor — an id mismatch means "different body of data, recompute".
  uint64_t delta_instance_id() const;

  /// \brief Epoch of the most recent recorded mutation (0 = none yet).
  uint64_t delta_epoch() const;

  /// \brief The ordered mutation batches recorded in epochs
  /// (`since`, delta_epoch()]. nullopt when the history is unavailable:
  /// tracking disabled, the ring trimmed past `since`, the history was
  /// broken (Clear/rename), or `since` is from another relation's clock.
  std::optional<std::vector<DeltaBatch>> DeltasSince(uint64_t since) const;

  /// \brief Snapshot of the delta clock: the pair a consumer stores when
  /// it materializes a derived result over this base. The base is
  /// unchanged since the snapshot iff a later cursor compares equal —
  /// Clear()/rename bump the epoch when breaking history, and copies get
  /// a fresh instance id, so every stale-data hazard shows up as a
  /// cursor mismatch.
  struct DeltaCursor {
    uint64_t instance_id = 0;  ///< 0 = tracking disabled at snapshot time
    uint64_t epoch = 0;

    friend bool operator==(const DeltaCursor& a, const DeltaCursor& b) {
      return a.instance_id == b.instance_id && a.epoch == b.epoch;
    }
    friend bool operator!=(const DeltaCursor& a, const DeltaCursor& b) {
      return !(a == b);
    }
  };

  DeltaCursor delta_cursor() const {
    return DeltaCursor{delta_instance_id(), delta_epoch()};
  }

  /// \brief Set equality of expτ(·) of both relations, ignoring texp.
  static bool ContentsEqualAt(const Relation& a, const Relation& b,
                              Timestamp tau);

  /// \brief Equality of expτ(·) of both relations including texp values.
  static bool EqualAt(const Relation& a, const Relation& b, Timestamp tau);

  /// \brief Removes all tuples. Breaks any recorded delta history (a
  /// wholesale wipe cannot be represented as a bounded delta stream).
  /// Keeps the storage mode and segment options.
  void Clear();

  /// \brief Renames the schema's attributes (arity must match); types and
  /// tuples are unchanged. Used by the SQL layer for AS aliases.
  Status RenameAttributes(const std::vector<std::string>& names);

  std::string ToString() const;

 private:
  static constexpr size_t kNotFound = static_cast<size_t>(-1);
  // Index slot states; non-negative values are packed (segment id << 32 |
  // offset) handles.
  static constexpr int64_t kEmpty = -1;
  static constexpr int64_t kTombstone = -2;
  /// Bucket of the single segment of a flat relation.
  static constexpr int64_t kFlatBucket =
      std::numeric_limits<int64_t>::min();
  /// Bucket of the dedicated never-expiring segment; largest, so the ∞
  /// segment sorts last in the directory.
  static constexpr int64_t kInfBucket = std::numeric_limits<int64_t>::max();

  /// One storage segment: a dense entry array plus its bucket key and
  /// conservative expiration bounds. `id` is this relation's stable
  /// handle namespace entry — retired when the segment is dropped, and
  /// renumbered compactly on every rehash.
  struct Segment {
    int64_t bucket = kFlatBucket;
    uint32_t id = 0;
    Timestamp min_texp = Timestamp::Infinity();
    Timestamp max_texp = Timestamp::Zero();
    std::vector<Entry> entries;
  };

  /// Where InsertEntry put (or found) a tuple.
  struct InsertPos {
    Segment* seg = nullptr;
    size_t off = 0;
    size_t slot = 0;
    bool inserted = false;
  };

  static const std::vector<Entry>& EmptyEntries();

  /// Deep-copies `other`'s segment directory, preserving ids (holes
  /// included, so copied stale slot handles stay unambiguous).
  void CopySegmentsFrom(const Relation& other);

  static int64_t MakeHandle(uint32_t id, size_t off) {
    return static_cast<int64_t>((static_cast<uint64_t>(id) << 32) |
                                static_cast<uint32_t>(off));
  }

  /// Resolves a packed slot handle to its entry; nullptr when the handle
  /// is stale (its segment was bulk-dropped). Out-params receive the
  /// owning segment and offset for live handles.
  Entry* ResolveHandle(int64_t handle, Segment** seg_out = nullptr,
                       size_t* off_out = nullptr) const;

  Status CheckAndCoerce(Tuple* tuple) const;

  /// texp bucket under the current width (segmented mode only).
  int64_t BucketFor(Timestamp texp) const {
    if (texp.IsInfinite()) return kInfBucket;
    return texp.ticks() / bucket_width_;
  }

  /// The bucket's segment, created (sorted into the directory) on demand.
  Segment* FindOrCreateSegment(int64_t bucket);
  /// Flat mode: the single segment, created on demand.
  Segment* FlatSegment();
  /// The segment a fresh entry expiring at `texp` belongs in.
  Segment* TargetSegment(Timestamp texp) {
    return segmented_ ? FindOrCreateSegment(BucketFor(texp))
                      : FlatSegment();
  }
  /// Removes `seg` (must be empty or being bulk-dropped) from the
  /// directory and retires its id.
  void DropSegment(Segment* seg);
  /// Doubles the bucket width (merging segments) while the finite
  /// segment count exceeds the cap; rebuilds the index. Must only be
  /// called between complete mutations (it invalidates slots/handles).
  void MaybeRebucket();

  /// Builds the deferred index if construction skipped it (see
  /// FromEntriesUnchecked). No-op once built; safe to call from
  /// concurrent const readers.
  void EnsureSlots() const;
  /// Index slot holding `tuple`'s entry, or kNotFound. Builds the
  /// deferred index on first use.
  size_t FindSlot(const Tuple& tuple) const;
  /// Index slot currently storing exactly `handle` (probed via the
  /// tuple's hash), or kNotFound.
  size_t FindSlotByHandle(const Tuple& tuple, int64_t handle) const;
  /// Finds `tuple` or appends (tuple, texp) to its target segment and
  /// indexes it. On duplicate nothing is appended.
  InsertPos InsertEntry(Tuple tuple, Timestamp texp);
  /// Updates the texp of the entry at `pos`, relocating it to the right
  /// bucket segment when the new texp moves it; returns the entry at its
  /// final location.
  Entry* SetTexpAt(const InsertPos& pos, Timestamp texp);
  /// Removes the entry at (seg, off) by swap-with-last within its
  /// segment, patching the moved entry's slot. `slot` is the erased
  /// entry's slot (tombstoned). Does not drop an emptied segment.
  void EraseWithinSegment(Segment* seg, size_t off, size_t slot);
  /// Drops `seg` if it just became empty; resets all storage when the
  /// relation as a whole became empty.
  void ShrinkAfterErase(Segment* seg);
  /// Grows/rebuilds the index so it can hold at least `n` live entries.
  /// Renumbers segment ids compactly and purges stale slots/tombstones.
  void Rehash(size_t n);
  /// Ensures capacity for one more insert.
  void EnsureSlotCapacity();
  /// Rebuilds slots_ from the segments, which must be duplicate-free.
  void RebuildIndex();

  // --- delta recording (no-ops when tracking is disabled) -----------------
  struct DeltaLog {
    uint64_t instance_id = 0;
    uint64_t epoch = 0;  ///< epoch of the newest recorded batch
    uint64_t floor = 0;  ///< history is complete for cursors >= floor
    size_t capacity = kDefaultDeltaRingCapacity;
    std::deque<DeltaBatch> batches;
  };
  void RecordDeltaInsert(const Tuple& tuple, Timestamp texp);
  void RecordDeltaUpdate(const Tuple& tuple, Timestamp old_texp,
                         Timestamp new_texp);
  void RecordDeltaErase(const Tuple& tuple, Timestamp old_texp);
  void TrimDeltaRing();
  /// Invalidates all outstanding cursors (wholesale change happened).
  void BreakDeltaHistory();

  /// The published delta log, or nullptr when tracking is disabled.
  /// Acquire load pairs with the release store in EnableDeltaTracking so
  /// concurrent first-enables are safe under a shared (reader) lock.
  DeltaLog* delta_log() const {
    return delta_.load(std::memory_order_acquire);
  }

  Schema schema_;
  /// Segment directory, sorted by ascending bucket (∞ last). unique_ptr
  /// keeps Segment addresses stable across directory shifts.
  std::vector<std::unique_ptr<Segment>> segments_;
  /// Segment id -> live segment; nullptr marks a retired (bulk-dropped)
  /// id, which is what makes its leftover index slots detectably stale.
  /// Compacted (ids renumbered) on every rehash.
  std::vector<Segment*> seg_by_id_;
  /// Open-addressing index: power-of-two sized, linear probing, packed
  /// (segment id, offset) handle or kEmpty/kTombstone per slot. Empty
  /// vector when no entries.
  std::vector<int64_t> slots_;
  /// False while the index build is deferred: relations assembled whole
  /// by FromEntriesUnchecked (operator results) skip it, since most are
  /// only ever scanned forward. Invariant: !slots_ready_ ⇒ slots_ is
  /// empty (no handles exist, stale or live), so any mutation path that
  /// reaches Rehash — which publishes the flag — heals it for free.
  /// `mutable` + atomic because the build is triggered by const lookups.
  mutable std::atomic<bool> slots_ready_{true};
  /// Serializes the one-shot lazy build among concurrent const readers.
  mutable std::mutex slots_mu_;
  /// Tombstoned plus stale slots (both are recycled by inserts and
  /// purged by rehash); kept for load-factor accounting.
  size_t tombstones_ = 0;
  size_t total_entries_ = 0;
  bool segmented_ = false;
  int64_t bucket_width_ = 8;
  size_t max_segments_ = 64;
  /// Per-epoch mutation log; null until EnableDeltaTracking. `mutable`
  /// because enabling is metadata-only and consumers hold const access;
  /// an atomic pointer (owned, deleted in ~Relation) so a first enable
  /// racing other readers publishes safely (see EnableDeltaTracking).
  mutable std::atomic<DeltaLog*> delta_{nullptr};
};

}  // namespace expdb

#endif  // EXPDB_RELATIONAL_RELATION_H_
