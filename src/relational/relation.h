// Relation: a set of tuples, each carrying an expiration time texp.
//
// This is the paper's data model (Sec. 2.2): the classical relational model
// is left unaltered except that every relation R comes with a function
// texp_R(·) from tuples to expiration times, and a function expτ that
// restricts R to the tuples unexpired at time τ:
//
//     expτ(R) = { r | r ∈ R ∧ texp_R(r) > τ }
//
// A tuple with no expiration has texp = ∞, in which case every operator in
// the algebra behaves exactly like its textbook equivalent.

#ifndef EXPDB_RELATIONAL_RELATION_H_
#define EXPDB_RELATIONAL_RELATION_H_

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/timestamp.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace expdb {

/// \brief A relation with per-tuple expiration times (set semantics).
///
/// Re-inserting a tuple that is already present keeps the later of the two
/// expiration times — the same max rule the algebra uses for duplicate
/// elimination in πexp and for ∪exp — so insertion is idempotent and
/// monotone in lifetime.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t arity() const { return schema_.arity(); }

  /// Number of stored tuples, including physically present expired ones.
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// \brief Inserts `tuple` expiring at `texp` (∞ = never).
  ///
  /// Checks arity and types against the schema; Int64 values are coerced
  /// into Double attributes. On duplicate, keeps max(old texp, new texp).
  Status Insert(Tuple tuple, Timestamp texp = Timestamp::Infinity());

  /// \brief Inserts with a time-to-live relative to `now`.
  Status InsertWithTtl(Tuple tuple, Timestamp now, int64_t ttl);

  /// \brief Inserts without schema checks and overwriting any existing
  /// expiration time. For engine-internal use (operators produce already
  /// type-checked tuples and must control texp exactly).
  void InsertUnchecked(Tuple tuple, Timestamp texp);

  /// \brief Inserts without schema checks, keeping max(old, new) texp on
  /// duplicates — the duplicate-elimination rule of πexp and ∪exp.
  void MergeMaxUnchecked(Tuple tuple, Timestamp texp);

  /// \brief Removes `tuple` regardless of its expiration state.
  /// \return true iff the tuple was present.
  bool Erase(const Tuple& tuple);

  /// \brief texp_R(r). nullopt if r ∉ R.
  std::optional<Timestamp> GetTexp(const Tuple& tuple) const;

  /// \brief True iff the tuple is stored (expired or not).
  bool Contains(const Tuple& tuple) const {
    return tuples_.find(tuple) != tuples_.end();
  }

  /// \brief True iff tuple ∈ expτ(R).
  bool ContainsUnexpired(const Tuple& tuple, Timestamp tau) const;

  /// \brief expτ(R) as a new relation (texps preserved).
  Relation UnexpiredAt(Timestamp tau) const;

  /// \brief Visits every tuple of expτ(R) with its texp.
  void ForEachUnexpired(
      Timestamp tau,
      const std::function<void(const Tuple&, Timestamp)>& fn) const;

  /// \brief Visits every stored tuple (including expired) with its texp.
  void ForEach(
      const std::function<void(const Tuple&, Timestamp)>& fn) const;

  /// \brief |expτ(R)|.
  size_t CountUnexpiredAt(Timestamp tau) const;

  /// \brief Physically removes every tuple with texp <= tau.
  /// \return the removed tuples with their expiration times, sorted by
  /// (texp, tuple) — the order in which they expired.
  std::vector<std::pair<Tuple, Timestamp>> RemoveExpired(Timestamp tau);

  /// \brief Smallest finite texp strictly greater than `tau`; nullopt when
  /// no unexpired tuple has a finite expiration. This is the next instant
  /// at which expτ(R) changes.
  std::optional<Timestamp> NextExpirationAfter(Timestamp tau) const;

  /// \brief Deterministic snapshot sorted by (tuple); used by printers and
  /// tests.
  std::vector<std::pair<Tuple, Timestamp>> SortedEntries() const;

  /// \brief Set equality of expτ(·) of both relations, ignoring texp.
  static bool ContentsEqualAt(const Relation& a, const Relation& b,
                              Timestamp tau);

  /// \brief Equality of expτ(·) of both relations including texp values.
  static bool EqualAt(const Relation& a, const Relation& b, Timestamp tau);

  /// \brief Removes all tuples.
  void Clear() { tuples_.clear(); }

  /// \brief Renames the schema's attributes (arity must match); types and
  /// tuples are unchanged. Used by the SQL layer for AS aliases.
  Status RenameAttributes(const std::vector<std::string>& names);

  std::string ToString() const;

 private:
  Status CheckAndCoerce(Tuple* tuple) const;

  Schema schema_;
  std::unordered_map<Tuple, Timestamp> tuples_;
};

}  // namespace expdb

#endif  // EXPDB_RELATIONAL_RELATION_H_
