// Tuple: an element of a relation; a fixed-arity sequence of Values.
//
// Tuples are immutable after construction, which lets the hash be computed
// exactly once (in the constructor) and cached. Every hash container over
// tuples — the Relation index, join build tables, aggregate partitioning —
// reuses the cached value instead of re-walking the Values, and the cache
// makes concurrent read-side hashing trivially thread-safe.
//
// Immutability also means copies never need their own Values: all copies
// of a tuple share one refcounted payload, so copying a Tuple is a
// pointer-plus-refcount bump instead of a Value-vector clone. Scans and
// the set operators copy entries between relations constantly — with
// shared payloads a scan result references the stored tuples instead of
// reallocating (and heap-scattering) every one of them.

#ifndef EXPDB_RELATIONAL_TUPLE_H_
#define EXPDB_RELATIONAL_TUPLE_H_

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/value.h"

namespace expdb {

/// \brief A tuple r with attributes r(0)..r(α-1) (paper uses 1-based).
class Tuple {
 public:
  Tuple();
  explicit Tuple(std::vector<Value> values);
  Tuple(std::initializer_list<Value> values);

  size_t arity() const { return values().size(); }

  /// The i-th attribute value (0-based).
  const Value& at(size_t i) const { return values()[i]; }
  const Value& operator[](size_t i) const { return values()[i]; }

  const std::vector<Value>& values() const {
    return values_ != nullptr ? *values_ : EmptyValues();
  }

  /// \brief ⟨r(0..α(r)-1), s(0..α(s)-1)⟩ — tuple concatenation for ×.
  Tuple Concat(const Tuple& other) const;

  /// \brief ⟨r(j1), ..., r(jn)⟩ — projection. Indices must be valid.
  Tuple Project(const std::vector<size_t>& indices) const;

  /// \brief The prefix of the first `n` attributes (left half of a ×).
  Tuple Prefix(size_t n) const;

  /// \brief The suffix starting at attribute `from` (right half of a ×).
  Tuple Suffix(size_t from) const;

  /// \brief Appends a single value (aggregation's appended column).
  Tuple Append(Value v) const;

  bool operator==(const Tuple& other) const {
    if (hash_ != other.hash_) return false;
    // Copies share the payload, so most equal tuples compare by pointer.
    if (values_ == other.values_) return true;
    return values() == other.values();
  }
  bool operator!=(const Tuple& other) const { return !(*this == other); }

  /// Lexicographic order; used for deterministic printing and sorting.
  bool operator<(const Tuple& other) const;

  /// The cached hash, computed once at construction.
  size_t Hash() const { return hash_; }

  /// \brief Hash of the projected columns ⟨r(j1), ..., r(jn)⟩, identical
  /// to Project(indices).Hash() but without materializing the projection.
  /// Join build/probe sides hash their key columns through this.
  size_t HashOfColumns(const std::vector<size_t>& indices) const;

  /// Renders the paper's ⟨v1, v2, ...⟩ notation (ASCII: "<v1, v2>").
  std::string ToString() const;

 private:
  static size_t HashValues(const std::vector<Value>& values);
  static const std::vector<Value>& EmptyValues();

  /// Shared immutable payload; null encodes the empty tuple.
  std::shared_ptr<const std::vector<Value>> values_;
  size_t hash_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Tuple& t);

}  // namespace expdb

template <>
struct std::hash<expdb::Tuple> {
  size_t operator()(const expdb::Tuple& t) const noexcept { return t.Hash(); }
};

#endif  // EXPDB_RELATIONAL_TUPLE_H_
