#include "relational/database.h"

namespace expdb {

Result<Relation*> Database::CreateRelation(const std::string& name,
                                           Schema schema) {
  if (name.empty()) {
    return Status::InvalidArgument("relation name must not be empty");
  }
  auto [it, inserted] = relations_.try_emplace(
      name, std::make_unique<Relation>(std::move(schema)));
  if (!inserted) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  // Base relations get expiration-partitioned storage: they live long,
  // accumulate expired tuples between compactions, and are what scans and
  // the maintenance pass iterate. Derived/scratch relations registered via
  // PutRelation stay flat — they are short-lived materializations whose
  // entries() the parallel evaluator chunks directly.
  it->second->SetSegmented();
  BumpEpoch();
  return it->second.get();
}

Status Database::PutRelation(const std::string& name, Relation relation) {
  if (name.empty()) {
    return Status::InvalidArgument("relation name must not be empty");
  }
  auto [it, inserted] = relations_.try_emplace(
      name, std::make_unique<Relation>(std::move(relation)));
  if (!inserted) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  BumpEpoch();
  return Status::OK();
}

Result<Relation*> Database::GetRelation(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return it->second.get();
}

Result<const Relation*> Database::GetRelation(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return static_cast<const Relation*>(it->second.get());
}

Status Database::Insert(const std::string& name, Tuple tuple,
                        Timestamp texp) {
  EXPDB_ASSIGN_OR_RETURN(Relation * rel, GetRelation(name));
  EXPDB_RETURN_NOT_OK(rel->Insert(std::move(tuple), texp));
  BumpEpoch();
  return Status::OK();
}

Result<bool> Database::Erase(const std::string& name, const Tuple& tuple) {
  EXPDB_ASSIGN_OR_RETURN(Relation * rel, GetRelation(name));
  const bool erased = rel->Erase(tuple);
  if (erased) BumpEpoch();
  return erased;
}

Status Database::DropRelation(const std::string& name) {
  if (relations_.erase(name) == 0) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  BumpEpoch();
  return Status::OK();
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

size_t Database::RemoveExpiredEverywhere(Timestamp tau) {
  size_t total = 0;
  for (auto& [name, rel] : relations_) {
    // No triggers at the Database layer, so the count-only bulk path is
    // enough — fully-expired segments drop in O(1) each.
    total += rel->DropExpired(tau).tuples;
  }
  if (total > 0) BumpEpoch();
  return total;
}

}  // namespace expdb
