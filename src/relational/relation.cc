#include "relational/relation.h"

#include <algorithm>

namespace expdb {

Status Relation::CheckAndCoerce(Tuple* tuple) const {
  if (tuple->arity() != schema_.arity()) {
    return Status::TypeError(
        "tuple " + tuple->ToString() + " has arity " +
        std::to_string(tuple->arity()) + ", schema " + schema_.ToString() +
        " requires " + std::to_string(schema_.arity()));
  }
  std::vector<Value> coerced;
  bool needs_rebuild = false;
  for (size_t i = 0; i < tuple->arity(); ++i) {
    const Value& v = tuple->at(i);
    const ValueType want = schema_.attribute(i).type;
    if (v.type() == want) continue;
    if (want == ValueType::kDouble && v.is_int64()) {
      if (!needs_rebuild) {
        coerced = tuple->values();
        needs_rebuild = true;
      }
      coerced[i] = Value(static_cast<double>(v.AsInt64()));
      continue;
    }
    return Status::TypeError(
        "attribute " + std::to_string(i + 1) + " of " + tuple->ToString() +
        " has type " + std::string(ValueTypeToString(v.type())) +
        ", schema " + schema_.ToString() + " requires " +
        std::string(ValueTypeToString(want)));
  }
  if (needs_rebuild) *tuple = Tuple(std::move(coerced));
  return Status::OK();
}

Status Relation::Insert(Tuple tuple, Timestamp texp) {
  EXPDB_RETURN_NOT_OK(CheckAndCoerce(&tuple));
  auto [it, inserted] = tuples_.try_emplace(std::move(tuple), texp);
  if (!inserted) it->second = Timestamp::Max(it->second, texp);
  return Status::OK();
}

Status Relation::InsertWithTtl(Tuple tuple, Timestamp now, int64_t ttl) {
  if (ttl < 0) {
    return Status::InvalidArgument("ttl must be non-negative, got " +
                                   std::to_string(ttl));
  }
  return Insert(std::move(tuple), now + ttl);
}

void Relation::InsertUnchecked(Tuple tuple, Timestamp texp) {
  tuples_.insert_or_assign(std::move(tuple), texp);
}

void Relation::MergeMaxUnchecked(Tuple tuple, Timestamp texp) {
  auto [it, inserted] = tuples_.try_emplace(std::move(tuple), texp);
  if (!inserted) it->second = Timestamp::Max(it->second, texp);
}

bool Relation::Erase(const Tuple& tuple) {
  return tuples_.erase(tuple) > 0;
}

std::optional<Timestamp> Relation::GetTexp(const Tuple& tuple) const {
  auto it = tuples_.find(tuple);
  if (it == tuples_.end()) return std::nullopt;
  return it->second;
}

bool Relation::ContainsUnexpired(const Tuple& tuple, Timestamp tau) const {
  auto it = tuples_.find(tuple);
  return it != tuples_.end() && it->second > tau;
}

Relation Relation::UnexpiredAt(Timestamp tau) const {
  Relation out(schema_);
  for (const auto& [tuple, texp] : tuples_) {
    if (texp > tau) out.tuples_.emplace(tuple, texp);
  }
  return out;
}

void Relation::ForEachUnexpired(
    Timestamp tau,
    const std::function<void(const Tuple&, Timestamp)>& fn) const {
  for (const auto& [tuple, texp] : tuples_) {
    if (texp > tau) fn(tuple, texp);
  }
}

void Relation::ForEach(
    const std::function<void(const Tuple&, Timestamp)>& fn) const {
  for (const auto& [tuple, texp] : tuples_) fn(tuple, texp);
}

size_t Relation::CountUnexpiredAt(Timestamp tau) const {
  size_t n = 0;
  for (const auto& [tuple, texp] : tuples_) {
    if (texp > tau) ++n;
  }
  return n;
}

std::vector<std::pair<Tuple, Timestamp>> Relation::RemoveExpired(
    Timestamp tau) {
  std::vector<std::pair<Tuple, Timestamp>> removed;
  for (auto it = tuples_.begin(); it != tuples_.end();) {
    if (it->second <= tau) {
      removed.emplace_back(it->first, it->second);
      it = tuples_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(removed.begin(), removed.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
  return removed;
}

std::optional<Timestamp> Relation::NextExpirationAfter(Timestamp tau) const {
  std::optional<Timestamp> best;
  for (const auto& [tuple, texp] : tuples_) {
    if (texp > tau && texp.IsFinite()) {
      if (!best || texp < *best) best = texp;
    }
  }
  return best;
}

std::vector<std::pair<Tuple, Timestamp>> Relation::SortedEntries() const {
  std::vector<std::pair<Tuple, Timestamp>> out(tuples_.begin(),
                                               tuples_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.first < b.first;
  });
  return out;
}

bool Relation::ContentsEqualAt(const Relation& a, const Relation& b,
                               Timestamp tau) {
  if (a.CountUnexpiredAt(tau) != b.CountUnexpiredAt(tau)) return false;
  for (const auto& [tuple, texp] : a.tuples_) {
    if (texp > tau && !b.ContainsUnexpired(tuple, tau)) return false;
  }
  return true;
}

bool Relation::EqualAt(const Relation& a, const Relation& b, Timestamp tau) {
  if (a.CountUnexpiredAt(tau) != b.CountUnexpiredAt(tau)) return false;
  for (const auto& [tuple, texp] : a.tuples_) {
    if (texp <= tau) continue;
    auto other = b.GetTexp(tuple);
    if (!other || *other <= tau || *other != texp) return false;
  }
  return true;
}

Status Relation::RenameAttributes(const std::vector<std::string>& names) {
  if (names.size() != schema_.arity()) {
    return Status::InvalidArgument(
        "rename needs " + std::to_string(schema_.arity()) + " names, got " +
        std::to_string(names.size()));
  }
  std::vector<Attribute> attrs = schema_.attributes();
  for (size_t i = 0; i < names.size(); ++i) attrs[i].name = names[i];
  EXPDB_ASSIGN_OR_RETURN(Schema renamed, Schema::Make(std::move(attrs)));
  schema_ = std::move(renamed);
  return Status::OK();
}

std::string Relation::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [tuple, texp] : SortedEntries()) {
    if (!first) out += ", ";
    first = false;
    out += tuple.ToString() + "@" + texp.ToString();
  }
  out += "}";
  return out;
}

}  // namespace expdb
