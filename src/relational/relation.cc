#include "relational/relation.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace expdb {

namespace {

/// Smallest power of two >= n (and >= 16).
size_t NextPow2(size_t n) {
  size_t cap = 16;
  while (cap < n) cap <<= 1;
  return cap;
}

/// Process-unique ids for tracked relations; 0 is reserved for "untracked".
uint64_t NextDeltaInstanceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

const std::vector<Relation::Entry>& Relation::EmptyEntries() {
  static const std::vector<Entry> kEmptyVec;
  return kEmptyVec;
}

// --- identity -------------------------------------------------------------

void Relation::CopySegmentsFrom(const Relation& other) {
  segments_.clear();
  segments_.reserve(other.segments_.size());
  for (const auto& seg : other.segments_) {
    segments_.push_back(std::make_unique<Segment>(*seg));
  }
  // Preserve the id-space size, holes included: the copied slots_ may hold
  // stale handles of bulk-dropped segments, and shrinking the table would
  // let a later FindOrCreateSegment re-issue one of those retired ids.
  seg_by_id_.assign(other.seg_by_id_.size(), nullptr);
  for (const auto& seg : segments_) seg_by_id_[seg->id] = seg.get();
}

Relation::Relation(const Relation& other)
    : schema_(other.schema_),
      total_entries_(other.total_entries_),
      segmented_(other.segmented_),
      bucket_width_(other.bucket_width_),
      max_segments_(other.max_segments_) {
  // A concurrent const reader of `other` may be materializing its lazy
  // index (which also renumbers segment ids), so copy the index state
  // and the segments under its build lock.
  std::lock_guard<std::mutex> lock(other.slots_mu_);
  slots_ = other.slots_;
  tombstones_ = other.tombstones_;
  slots_ready_.store(other.slots_ready_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  CopySegmentsFrom(other);
}

Relation& Relation::operator=(const Relation& other) {
  if (this != &other) {
    schema_ = other.schema_;
    total_entries_ = other.total_entries_;
    segmented_ = other.segmented_;
    bucket_width_ = other.bucket_width_;
    max_segments_ = other.max_segments_;
    {
      std::lock_guard<std::mutex> lock(other.slots_mu_);
      slots_ = other.slots_;
      tombstones_ = other.tombstones_;
      slots_ready_.store(
          other.slots_ready_.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      CopySegmentsFrom(other);
    }
    // Assignment replaces this object's contents wholesale; any recorded
    // history no longer describes them.
    delete delta_.exchange(nullptr, std::memory_order_acq_rel);
  }
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : schema_(std::move(other.schema_)),
      segments_(std::move(other.segments_)),
      seg_by_id_(std::move(other.seg_by_id_)),
      slots_(std::move(other.slots_)),
      tombstones_(other.tombstones_),
      total_entries_(other.total_entries_),
      segmented_(other.segmented_),
      bucket_width_(other.bucket_width_),
      max_segments_(other.max_segments_),
      delta_(other.delta_.exchange(nullptr, std::memory_order_acq_rel)) {
  slots_ready_.store(other.slots_ready_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  other.total_entries_ = 0;
  other.tombstones_ = 0;
  // Moved-from: no segments, no slots — trivially "built".
  other.slots_ready_.store(true, std::memory_order_relaxed);
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this != &other) {
    schema_ = std::move(other.schema_);
    segments_ = std::move(other.segments_);
    seg_by_id_ = std::move(other.seg_by_id_);
    slots_ = std::move(other.slots_);
    tombstones_ = other.tombstones_;
    total_entries_ = other.total_entries_;
    segmented_ = other.segmented_;
    bucket_width_ = other.bucket_width_;
    max_segments_ = other.max_segments_;
    slots_ready_.store(other.slots_ready_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    other.total_entries_ = 0;
    other.tombstones_ = 0;
    other.slots_ready_.store(true, std::memory_order_relaxed);
    delete delta_.exchange(
        other.delta_.exchange(nullptr, std::memory_order_acq_rel),
        std::memory_order_acq_rel);
  }
  return *this;
}

Relation::~Relation() {
  delete delta_.load(std::memory_order_acquire);
}

// --- delta capture --------------------------------------------------------

void Relation::EnableDeltaTracking(size_t ring_capacity) const {
  if (delta_log() != nullptr) return;
  auto* log = new DeltaLog();
  log->instance_id = NextDeltaInstanceId();
  log->capacity = ring_capacity > 0 ? ring_capacity : 1;
  // First publisher wins; a concurrent enable that lost the race frees
  // its candidate. Readers pair with the acquire load in delta_log().
  DeltaLog* expected = nullptr;
  if (!delta_.compare_exchange_strong(expected, log,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
    delete log;
  }
}

uint64_t Relation::delta_instance_id() const {
  const DeltaLog* log = delta_log();
  return log != nullptr ? log->instance_id : 0;
}

uint64_t Relation::delta_epoch() const {
  const DeltaLog* log = delta_log();
  return log != nullptr ? log->epoch : 0;
}

std::optional<std::vector<Relation::DeltaBatch>> Relation::DeltasSince(
    uint64_t since) const {
  const DeltaLog* log = delta_log();
  if (log == nullptr) return std::nullopt;
  // A cursor from the future (or from another relation's clock) or one
  // older than the retained window cannot be served exactly.
  if (since > log->epoch || since < log->floor) return std::nullopt;
  std::vector<DeltaBatch> out;
  for (const DeltaBatch& b : log->batches) {
    if (b.epoch > since) out.push_back(b);
  }
  return out;
}

void Relation::RecordDeltaInsert(const Tuple& tuple, Timestamp texp) {
  DeltaLog* log = delta_log();
  if (log == nullptr) return;
  DeltaBatch b;
  b.epoch = ++log->epoch;
  b.inserted.push_back(Entry{tuple, texp});
  log->batches.push_back(std::move(b));
  TrimDeltaRing();
}

void Relation::RecordDeltaUpdate(const Tuple& tuple, Timestamp old_texp,
                                 Timestamp new_texp) {
  DeltaLog* log = delta_log();
  if (log == nullptr) return;
  DeltaBatch b;
  b.epoch = ++log->epoch;
  b.deleted.push_back(Entry{tuple, old_texp});
  b.inserted.push_back(Entry{tuple, new_texp});
  log->batches.push_back(std::move(b));
  TrimDeltaRing();
}

void Relation::RecordDeltaErase(const Tuple& tuple, Timestamp old_texp) {
  DeltaLog* log = delta_log();
  if (log == nullptr) return;
  DeltaBatch b;
  b.epoch = ++log->epoch;
  b.deleted.push_back(Entry{tuple, old_texp});
  log->batches.push_back(std::move(b));
  TrimDeltaRing();
}

void Relation::TrimDeltaRing() {
  DeltaLog* log = delta_log();
  while (log->batches.size() > log->capacity) {
    log->floor = log->batches.front().epoch;
    log->batches.pop_front();
  }
}

void Relation::BreakDeltaHistory() {
  DeltaLog* log = delta_log();
  if (log == nullptr) return;
  log->batches.clear();
  log->floor = ++log->epoch;
}

// --- segment directory ----------------------------------------------------

Relation::Entry* Relation::ResolveHandle(int64_t handle, Segment** seg_out,
                                         size_t* off_out) const {
  const uint64_t packed = static_cast<uint64_t>(handle);
  const size_t id = static_cast<size_t>(packed >> 32);
  const size_t off = static_cast<size_t>(packed & 0xffffffffu);
  Segment* seg = id < seg_by_id_.size() ? seg_by_id_[id] : nullptr;
  // seg == nullptr: the segment was bulk-dropped and the slot is stale.
  // The offset check is defensive: live segments only shrink via
  // swap-with-last which patches slots, so it should never fire.
  if (seg == nullptr || off >= seg->entries.size()) return nullptr;
  if (seg_out != nullptr) *seg_out = seg;
  if (off_out != nullptr) *off_out = off;
  return &seg->entries[off];
}

Relation::Segment* Relation::FindOrCreateSegment(int64_t bucket) {
  auto it = std::lower_bound(
      segments_.begin(), segments_.end(), bucket,
      [](const std::unique_ptr<Segment>& s, int64_t b) {
        return s->bucket < b;
      });
  if (it != segments_.end() && (*it)->bucket == bucket) return it->get();
  auto seg = std::make_unique<Segment>();
  seg->bucket = bucket;
  seg->id = static_cast<uint32_t>(seg_by_id_.size());
  seg_by_id_.push_back(seg.get());
  return segments_.insert(it, std::move(seg))->get();
}

Relation::Segment* Relation::FlatSegment() {
  if (!segments_.empty()) return segments_[0].get();
  return FindOrCreateSegment(kFlatBucket);
}

void Relation::DropSegment(Segment* seg) {
  seg_by_id_[seg->id] = nullptr;
  for (auto it = segments_.begin(); it != segments_.end(); ++it) {
    if (it->get() == seg) {
      segments_.erase(it);
      return;
    }
  }
  assert(false && "DropSegment: segment not in directory");
}

void Relation::MaybeRebucket() {
  if (!segmented_) return;
  size_t finite = segments_.size();
  if (finite > 0 && segments_.back()->bucket == kInfBucket) --finite;
  if (finite <= max_segments_) return;
  // Double the width until the finite segments fit the cap. Bucket keys
  // halve exactly under doubling (ticks/(2w) == (ticks/w)/2 for ticks,
  // w >= 0), so merging is a linear coalescing pass over the sorted
  // directory — no per-entry re-bucketing needed to find neighbours.
  while (finite > max_segments_) {
    bucket_width_ *= 2;
    std::vector<std::unique_ptr<Segment>> merged;
    merged.reserve(segments_.size());
    for (auto& seg : segments_) {
      const int64_t nb =
          seg->bucket == kInfBucket ? kInfBucket : seg->bucket / 2;
      if (!merged.empty() && merged.back()->bucket == nb) {
        Segment& dst = *merged.back();
        dst.min_texp = Timestamp::Min(dst.min_texp, seg->min_texp);
        dst.max_texp = Timestamp::Max(dst.max_texp, seg->max_texp);
        dst.entries.insert(dst.entries.end(),
                           std::make_move_iterator(seg->entries.begin()),
                           std::make_move_iterator(seg->entries.end()));
      } else {
        seg->bucket = nb;
        merged.push_back(std::move(seg));
      }
    }
    segments_ = std::move(merged);
    finite = segments_.size();
    if (finite > 0 && segments_.back()->bucket == kInfBucket) --finite;
  }
  // Offsets (and potentially ids) changed wholesale; rebuild the index.
  RebuildIndex();
}

// --- hash index -----------------------------------------------------------

void Relation::EnsureSlots() const {
  if (slots_ready_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(slots_mu_);
  if (slots_ready_.load(std::memory_order_relaxed)) return;
  // !slots_ready_ guarantees slots_ is empty, so this is a from-scratch
  // build, not a repair. Rehash publishes the flag (release) when done.
  const_cast<Relation*>(this)->RebuildIndex();
}

size_t Relation::FindSlot(const Tuple& tuple) const {
  EnsureSlots();
  if (slots_.empty()) return kNotFound;
  const size_t mask = slots_.size() - 1;
  size_t slot = tuple.Hash() & mask;
  for (;;) {
    const int64_t s = slots_[slot];
    if (s == kEmpty) return kNotFound;
    if (s != kTombstone) {
      const Entry* e = ResolveHandle(s);
      // Stale handles (bulk-dropped segment) probe like tombstones.
      if (e != nullptr && e->tuple == tuple) return slot;
    }
    slot = (slot + 1) & mask;
  }
}

size_t Relation::FindSlotByHandle(const Tuple& tuple, int64_t handle) const {
  const size_t mask = slots_.size() - 1;
  size_t slot = tuple.Hash() & mask;
  for (;;) {
    const int64_t s = slots_[slot];
    if (s == handle) return slot;
    if (s == kEmpty) return kNotFound;
    slot = (slot + 1) & mask;
  }
}

void Relation::Rehash(size_t n) {
  // Load factor 0.7: capacity such that n < 0.7 * cap.
  slots_.assign(NextPow2(n * 10 / 7 + 1), kEmpty);
  tombstones_ = 0;
  // Renumber segment ids compactly: stale ids (bulk-dropped segments) are
  // only reachable through slots, and every slot is being rewritten.
  seg_by_id_.clear();
  seg_by_id_.reserve(segments_.size());
  for (const auto& seg : segments_) {
    seg->id = static_cast<uint32_t>(seg_by_id_.size());
    seg_by_id_.push_back(seg.get());
  }
  const size_t mask = slots_.size() - 1;
  for (const auto& seg : segments_) {
    for (size_t off = 0; off < seg->entries.size(); ++off) {
      size_t slot = seg->entries[off].tuple.Hash() & mask;
      while (slots_[slot] != kEmpty) slot = (slot + 1) & mask;
      slots_[slot] = MakeHandle(seg->id, off);
    }
  }
  // Publishes the fully-built table to concurrent lazy readers (pairs
  // with the acquire load in EnsureSlots). Redundant but harmless on the
  // exclusive-access mutation paths.
  slots_ready_.store(true, std::memory_order_release);
}

void Relation::RebuildIndex() { Rehash(total_entries_); }

void Relation::EnsureSlotCapacity() {
  if (slots_.empty() ||
      (total_entries_ + tombstones_ + 1) * 10 >= slots_.size() * 7) {
    Rehash(total_entries_ + 1);
  }
}

Relation::InsertPos Relation::InsertEntry(Tuple tuple, Timestamp texp) {
  EnsureSlotCapacity();
  const size_t mask = slots_.size() - 1;
  size_t slot = tuple.Hash() & mask;
  size_t first_reusable = kNotFound;
  for (;;) {
    const int64_t s = slots_[slot];
    if (s == kEmpty) break;
    if (s == kTombstone) {
      if (first_reusable == kNotFound) first_reusable = slot;
    } else {
      Segment* seg = nullptr;
      size_t off = 0;
      Entry* e = ResolveHandle(s, &seg, &off);
      if (e == nullptr) {
        // Stale handle from a bulk-dropped segment: reusable like a
        // tombstone (it was added to tombstones_ at drop time).
        if (first_reusable == kNotFound) first_reusable = slot;
      } else if (e->tuple == tuple) {
        return InsertPos{seg, off, slot, false};
      }
    }
    slot = (slot + 1) & mask;
  }
  if (first_reusable != kNotFound) {
    slot = first_reusable;
    --tombstones_;
  }
  Segment* seg = TargetSegment(texp);
  const size_t off = seg->entries.size();
  seg->entries.push_back(Entry{std::move(tuple), texp});
  seg->min_texp = Timestamp::Min(seg->min_texp, texp);
  seg->max_texp = Timestamp::Max(seg->max_texp, texp);
  ++total_entries_;
  slots_[slot] = MakeHandle(seg->id, off);
  return InsertPos{seg, off, slot, true};
}

Relation::Entry* Relation::SetTexpAt(const InsertPos& pos, Timestamp texp) {
  Segment* seg = pos.seg;
  Entry* e = &seg->entries[pos.off];
  if (!segmented_ || BucketFor(texp) == seg->bucket) {
    // In place; widen the bounds (they may now overstate the range, which
    // is the conservative direction for both ends).
    e->texp = texp;
    seg->min_texp = Timestamp::Min(seg->min_texp, texp);
    seg->max_texp = Timestamp::Max(seg->max_texp, texp);
    return e;
  }
  // The new texp falls into a different bucket: relocate the entry,
  // reusing the tuple's existing index slot for the new handle.
  Tuple tuple = std::move(e->tuple);
  const size_t last = seg->entries.size() - 1;
  if (pos.off != last) {
    Entry& moved = seg->entries[last];
    const size_t moved_slot =
        FindSlotByHandle(moved.tuple, MakeHandle(seg->id, last));
    assert(moved_slot != kNotFound);
    slots_[moved_slot] = MakeHandle(seg->id, pos.off);
    seg->entries[pos.off] = std::move(moved);
  }
  seg->entries.pop_back();
  if (seg->entries.empty()) DropSegment(seg);  // invalidates seg
  Segment* target = FindOrCreateSegment(BucketFor(texp));
  const size_t off = target->entries.size();
  target->entries.push_back(Entry{std::move(tuple), texp});
  target->min_texp = Timestamp::Min(target->min_texp, texp);
  target->max_texp = Timestamp::Max(target->max_texp, texp);
  slots_[pos.slot] = MakeHandle(target->id, off);
  return &target->entries[off];
}

void Relation::EraseWithinSegment(Segment* seg, size_t off, size_t slot) {
  slots_[slot] = kTombstone;
  ++tombstones_;
  const size_t last = seg->entries.size() - 1;
  if (off != last) {
    // Patch the index slot of the entry being moved into the hole.
    Entry& moved = seg->entries[last];
    const size_t moved_slot =
        FindSlotByHandle(moved.tuple, MakeHandle(seg->id, last));
    assert(moved_slot != kNotFound);
    slots_[moved_slot] = MakeHandle(seg->id, off);
    seg->entries[off] = std::move(moved);
  }
  seg->entries.pop_back();
  --total_entries_;
}

void Relation::ShrinkAfterErase(Segment* seg) {
  if (total_entries_ == 0) {
    // Parity with classic behaviour: an emptied relation drops all
    // storage so repeated fill/drain cycles do not accrete state.
    segments_.clear();
    seg_by_id_.clear();
    slots_.clear();
    tombstones_ = 0;
    slots_ready_.store(true, std::memory_order_relaxed);
    return;
  }
  if (seg->entries.empty()) DropSegment(seg);
}

void Relation::Reserve(size_t n) {
  if (!segmented_) FlatSegment()->entries.reserve(n);
  // max() so a small reservation against a deferred-index relation still
  // rehashes at a capacity that fits every stored entry.
  if (n * 10 / 7 + 1 > slots_.size()) Rehash(std::max(n, total_entries_));
}

Relation Relation::FromEntriesUnchecked(Schema schema,
                                        std::vector<Entry> entries) {
  Relation out(std::move(schema));
  if (entries.empty()) return out;
  auto seg = std::make_unique<Relation::Segment>();
  seg->bucket = kFlatBucket;
  seg->id = 0;
  for (const Entry& e : entries) {
    seg->min_texp = Timestamp::Min(seg->min_texp, e.texp);
    seg->max_texp = Timestamp::Max(seg->max_texp, e.texp);
  }
  seg->entries = std::move(entries);
  out.total_entries_ = seg->entries.size();
  out.seg_by_id_.push_back(seg.get());
  out.segments_.push_back(std::move(seg));
  // Defer the index: operator results are usually scanned once and
  // discarded, so the build (a full rehash of every entry) would often
  // be pure overhead. The first point lookup or mutation triggers it
  // through EnsureSlots / EnsureSlotCapacity.
  out.slots_ready_.store(false, std::memory_order_relaxed);
  return out;
}

void Relation::SetSegmented(SegmentOptions options) {
  segmented_ = true;
  bucket_width_ = options.bucket_width > 0 ? options.bucket_width : 1;
  max_segments_ = options.max_segments > 0 ? options.max_segments : 1;
  if (total_entries_ == 0) {
    segments_.clear();
    seg_by_id_.clear();
    slots_.clear();
    tombstones_ = 0;
    slots_ready_.store(true, std::memory_order_relaxed);
    return;
  }
  // Redistribute existing entries into their buckets.
  std::vector<std::unique_ptr<Segment>> old = std::move(segments_);
  segments_.clear();
  seg_by_id_.clear();
  for (auto& oseg : old) {
    for (Entry& e : oseg->entries) {
      Segment* seg = FindOrCreateSegment(BucketFor(e.texp));
      seg->min_texp = Timestamp::Min(seg->min_texp, e.texp);
      seg->max_texp = Timestamp::Max(seg->max_texp, e.texp);
      seg->entries.push_back(std::move(e));
    }
  }
  MaybeRebucket();  // also rebuilds the index when it merges
  RebuildIndex();
}

// --- schema checking ------------------------------------------------------

Status Relation::CheckAndCoerce(Tuple* tuple) const {
  if (tuple->arity() != schema_.arity()) {
    return Status::TypeError(
        "tuple " + tuple->ToString() + " has arity " +
        std::to_string(tuple->arity()) + ", schema " + schema_.ToString() +
        " requires " + std::to_string(schema_.arity()));
  }
  std::vector<Value> coerced;
  bool needs_rebuild = false;
  for (size_t i = 0; i < tuple->arity(); ++i) {
    const Value& v = tuple->at(i);
    const ValueType want = schema_.attribute(i).type;
    if (v.type() == want) continue;
    if (want == ValueType::kDouble && v.is_int64()) {
      if (!needs_rebuild) {
        coerced = tuple->values();
        needs_rebuild = true;
      }
      coerced[i] = Value(static_cast<double>(v.AsInt64()));
      continue;
    }
    return Status::TypeError(
        "attribute " + std::to_string(i + 1) + " of " + tuple->ToString() +
        " has type " + std::string(ValueTypeToString(v.type())) +
        ", schema " + schema_.ToString() + " requires " +
        std::string(ValueTypeToString(want)));
  }
  if (needs_rebuild) *tuple = Tuple(std::move(coerced));
  return Status::OK();
}

// --- mutation -------------------------------------------------------------

Status Relation::Insert(Tuple tuple, Timestamp texp) {
  EXPDB_RETURN_NOT_OK(CheckAndCoerce(&tuple));
  MergeMaxUnchecked(std::move(tuple), texp);
  return Status::OK();
}

Status Relation::InsertWithTtl(Tuple tuple, Timestamp now, int64_t ttl) {
  if (ttl < 0) {
    return Status::InvalidArgument("ttl must be non-negative, got " +
                                   std::to_string(ttl));
  }
  return Insert(std::move(tuple), now + ttl);
}

void Relation::InsertUnchecked(Tuple tuple, Timestamp texp) {
  InsertPos pos = InsertEntry(std::move(tuple), texp);
  if (pos.inserted) {
    RecordDeltaInsert(pos.seg->entries[pos.off].tuple, texp);
  } else {
    const Timestamp old = pos.seg->entries[pos.off].texp;
    if (old != texp) {
      Entry* e = SetTexpAt(pos, texp);
      RecordDeltaUpdate(e->tuple, old, texp);
    }
  }
  MaybeRebucket();
}

void Relation::MergeMaxUnchecked(Tuple tuple, Timestamp texp) {
  InsertPos pos = InsertEntry(std::move(tuple), texp);
  if (pos.inserted) {
    RecordDeltaInsert(pos.seg->entries[pos.off].tuple, texp);
  } else {
    const Timestamp old = pos.seg->entries[pos.off].texp;
    const Timestamp merged = Timestamp::Max(old, texp);
    if (merged != old) {
      Entry* e = SetTexpAt(pos, merged);
      RecordDeltaUpdate(e->tuple, old, merged);
    }
  }
  MaybeRebucket();
}

bool Relation::Erase(const Tuple& tuple) {
  const size_t slot = FindSlot(tuple);
  if (slot == kNotFound) return false;
  Segment* seg = nullptr;
  size_t off = 0;
  Entry* e = ResolveHandle(slots_[slot], &seg, &off);
  assert(e != nullptr);
  RecordDeltaErase(e->tuple, e->texp);
  EraseWithinSegment(seg, off, slot);
  ShrinkAfterErase(seg);
  return true;
}

// --- bulk expiration ------------------------------------------------------

Relation::DropResult Relation::DropExpired(Timestamp tau) {
  DropResult out;
  for (size_t i = 0; i < segments_.size();) {
    Segment* seg = segments_[i].get();
    if (seg->entries.empty()) {
      ++i;
      continue;
    }
    if (seg->max_texp <= tau) {
      // Fully expired: drop the whole segment in O(1) — retire its id and
      // unlink it. Its index slots become stale handles, recognized lazily
      // on probe and purged wholesale at the next rehash; counting them as
      // tombstones keeps the load-factor math honest.
      const size_t n = seg->entries.size();
      out.tuples += n;
      out.segments += 1;
      // A deferred index has no slots to go stale.
      if (!slots_.empty()) tombstones_ += n;
      total_entries_ -= n;
      seg_by_id_[seg->id] = nullptr;
      segments_.erase(segments_.begin() + static_cast<ptrdiff_t>(i));
      continue;  // the next segment shifted into position i
    }
    if (seg->min_texp > tau) {
      // Fully live: nothing to do, and no need to scan it.
      ++i;
      continue;
    }
    // Straddling τ: per-tuple swap-erase of expired entries, then re-derive
    // exact bounds from the survivors. The swap-erases patch index slots,
    // so a deferred index must materialize first.
    EnsureSlots();
    Timestamp new_min = Timestamp::Infinity();
    Timestamp new_max = Timestamp::Zero();
    for (size_t off = 0; off < seg->entries.size();) {
      const Entry& e = seg->entries[off];
      if (e.texp <= tau) {
        const size_t slot =
            FindSlotByHandle(e.tuple, MakeHandle(seg->id, off));
        assert(slot != kNotFound);
        ++out.tuples;
        EraseWithinSegment(seg, off, slot);
      } else {
        new_min = Timestamp::Min(new_min, e.texp);
        new_max = Timestamp::Max(new_max, e.texp);
        ++off;
      }
    }
    if (seg->entries.empty()) {
      seg_by_id_[seg->id] = nullptr;
      segments_.erase(segments_.begin() + static_cast<ptrdiff_t>(i));
      continue;
    }
    seg->min_texp = new_min;
    seg->max_texp = new_max;
    ++i;
  }
  if (total_entries_ == 0 && out.tuples > 0) {
    segments_.clear();
    seg_by_id_.clear();
    slots_.clear();
    tombstones_ = 0;
    slots_ready_.store(true, std::memory_order_relaxed);
  }
  return out;
}

std::vector<std::pair<Tuple, Timestamp>> Relation::RemoveExpired(
    Timestamp tau) {
  std::vector<std::pair<Tuple, Timestamp>> removed;
  for (size_t i = 0; i < segments_.size();) {
    Segment* seg = segments_[i].get();
    if (seg->entries.empty()) {
      ++i;
      continue;
    }
    if (seg->min_texp > tau) {
      ++i;
      continue;
    }
    if (seg->max_texp <= tau) {
      // Fully expired, but the caller needs the tuples (trigger firing):
      // move them out, then drop the segment without per-entry swaps.
      const size_t n = seg->entries.size();
      for (Entry& e : seg->entries) {
        removed.emplace_back(std::move(e.tuple), e.texp);
      }
      if (!slots_.empty()) tombstones_ += n;
      total_entries_ -= n;
      seg_by_id_[seg->id] = nullptr;
      segments_.erase(segments_.begin() + static_cast<ptrdiff_t>(i));
      continue;
    }
    EnsureSlots();
    Timestamp new_min = Timestamp::Infinity();
    Timestamp new_max = Timestamp::Zero();
    for (size_t off = 0; off < seg->entries.size();) {
      Entry& e = seg->entries[off];
      if (e.texp <= tau) {
        const size_t slot =
            FindSlotByHandle(e.tuple, MakeHandle(seg->id, off));
        assert(slot != kNotFound);
        removed.emplace_back(std::move(e.tuple), e.texp);
        EraseWithinSegment(seg, off, slot);
      } else {
        new_min = Timestamp::Min(new_min, e.texp);
        new_max = Timestamp::Max(new_max, e.texp);
        ++off;
      }
    }
    if (seg->entries.empty()) {
      seg_by_id_[seg->id] = nullptr;
      segments_.erase(segments_.begin() + static_cast<ptrdiff_t>(i));
      continue;
    }
    seg->min_texp = new_min;
    seg->max_texp = new_max;
    ++i;
  }
  if (total_entries_ == 0 && !removed.empty()) {
    segments_.clear();
    seg_by_id_.clear();
    slots_.clear();
    tombstones_ = 0;
    slots_ready_.store(true, std::memory_order_relaxed);
  }
  std::sort(removed.begin(), removed.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
  return removed;
}

// --- lookups and scans ----------------------------------------------------

std::optional<Timestamp> Relation::GetTexp(const Tuple& tuple) const {
  const size_t slot = FindSlot(tuple);
  if (slot == kNotFound) return std::nullopt;
  return ResolveHandle(slots_[slot])->texp;
}

bool Relation::ContainsUnexpired(const Tuple& tuple, Timestamp tau) const {
  const size_t slot = FindSlot(tuple);
  return slot != kNotFound && ResolveHandle(slots_[slot])->texp > tau;
}

Relation Relation::UnexpiredAt(Timestamp tau) const {
  std::vector<Entry> kept;
  kept.reserve(total_entries_);
  for (const auto& seg : segments_) {
    if (seg->entries.empty() || seg->max_texp <= tau) continue;  // pruned
    if (seg->min_texp > tau) {
      // Fully live: bulk copy, no per-tuple texp checks.
      kept.insert(kept.end(), seg->entries.begin(), seg->entries.end());
      continue;
    }
    for (const Entry& e : seg->entries) {
      if (e.texp > tau) kept.push_back(e);
    }
  }
  return FromEntriesUnchecked(schema_, std::move(kept));
}

void Relation::ForEachUnexpired(
    Timestamp tau,
    const std::function<void(const Tuple&, Timestamp)>& fn) const {
  for (const auto& seg : segments_) {
    if (seg->entries.empty() || seg->max_texp <= tau) continue;
    if (seg->min_texp > tau) {
      for (const Entry& e : seg->entries) fn(e.tuple, e.texp);
      continue;
    }
    for (const Entry& e : seg->entries) {
      if (e.texp > tau) fn(e.tuple, e.texp);
    }
  }
}

void Relation::ForEach(
    const std::function<void(const Tuple&, Timestamp)>& fn) const {
  for (const auto& seg : segments_) {
    for (const Entry& e : seg->entries) fn(e.tuple, e.texp);
  }
}

size_t Relation::CountUnexpiredAt(Timestamp tau) const {
  size_t n = 0;
  for (const auto& seg : segments_) {
    if (seg->entries.empty() || seg->max_texp <= tau) continue;
    if (seg->min_texp > tau) {
      n += seg->entries.size();
      continue;
    }
    for (const Entry& e : seg->entries) {
      if (e.texp > tau) ++n;
    }
  }
  return n;
}

Relation::SegmentOccupancy Relation::OccupancyAt(Timestamp tau) const {
  SegmentOccupancy occ;
  for (const auto& seg : segments_) {
    if (seg->entries.empty()) continue;
    if (seg->max_texp <= tau) {
      ++occ.expired_segments;
      occ.expired_tuples += seg->entries.size();
    } else if (seg->min_texp > tau) {
      ++occ.live_segments;
      occ.live_tuples += seg->entries.size();
    } else {
      ++occ.straddling_segments;
      for (const Entry& e : seg->entries) {
        if (e.texp > tau) {
          ++occ.live_tuples;
        } else {
          ++occ.expired_tuples;
        }
      }
    }
  }
  return occ;
}

std::optional<Timestamp> Relation::NextExpirationAfter(Timestamp tau) const {
  std::optional<Timestamp> best;
  for (const auto& seg : segments_) {
    if (seg->entries.empty()) continue;
    // A segment whose entire range is at or below tau has no candidate;
    // one whose min already beats the current best cannot improve it.
    if (seg->max_texp <= tau) continue;
    if (best && seg->min_texp >= *best) continue;
    for (const Entry& e : seg->entries) {
      if (e.texp > tau && e.texp.IsFinite()) {
        if (!best || e.texp < *best) best = e.texp;
      }
    }
  }
  return best;
}

std::vector<std::pair<Tuple, Timestamp>> Relation::SortedEntries() const {
  std::vector<std::pair<Tuple, Timestamp>> out;
  out.reserve(total_entries_);
  for (const auto& seg : segments_) {
    for (const Entry& e : seg->entries) out.emplace_back(e.tuple, e.texp);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.first < b.first;
  });
  return out;
}

bool Relation::ContentsEqualAt(const Relation& a, const Relation& b,
                               Timestamp tau) {
  if (a.CountUnexpiredAt(tau) != b.CountUnexpiredAt(tau)) return false;
  bool equal = true;
  a.ForEachUnexpired(tau, [&](const Tuple& t, Timestamp) {
    if (equal && !b.ContainsUnexpired(t, tau)) equal = false;
  });
  return equal;
}

bool Relation::EqualAt(const Relation& a, const Relation& b, Timestamp tau) {
  if (a.CountUnexpiredAt(tau) != b.CountUnexpiredAt(tau)) return false;
  bool equal = true;
  a.ForEachUnexpired(tau, [&](const Tuple& t, Timestamp texp) {
    if (!equal) return;
    auto other = b.GetTexp(t);
    if (!other || *other <= tau || *other != texp) equal = false;
  });
  return equal;
}

void Relation::Clear() {
  segments_.clear();
  seg_by_id_.clear();
  slots_.clear();
  tombstones_ = 0;
  slots_ready_.store(true, std::memory_order_relaxed);
  total_entries_ = 0;
  // A wholesale wipe cannot be represented as a bounded delta stream.
  BreakDeltaHistory();
}

Status Relation::RenameAttributes(const std::vector<std::string>& names) {
  if (names.size() != schema_.arity()) {
    return Status::InvalidArgument(
        "rename needs " + std::to_string(schema_.arity()) + " names, got " +
        std::to_string(names.size()));
  }
  std::vector<Attribute> attrs = schema_.attributes();
  for (size_t i = 0; i < names.size(); ++i) attrs[i].name = names[i];
  EXPDB_ASSIGN_OR_RETURN(Schema renamed, Schema::Make(std::move(attrs)));
  schema_ = std::move(renamed);
  // A schema change invalidates any consumer interpreting recorded deltas
  // against the old attribute names; force them back onto the full path.
  BreakDeltaHistory();
  return Status::OK();
}

std::string Relation::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [tuple, texp] : SortedEntries()) {
    if (!first) out += ", ";
    first = false;
    out += tuple.ToString() + "@" + texp.ToString();
  }
  out += "}";
  return out;
}

}  // namespace expdb
