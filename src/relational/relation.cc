#include "relational/relation.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace expdb {

namespace {

/// Smallest power of two >= n (and >= 16).
size_t NextPow2(size_t n) {
  size_t cap = 16;
  while (cap < n) cap <<= 1;
  return cap;
}

/// Process-unique ids for tracked relations; 0 is reserved for "untracked".
uint64_t NextDeltaInstanceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

// --- identity -------------------------------------------------------------

Relation::Relation(const Relation& other)
    : schema_(other.schema_),
      entries_(other.entries_),
      slots_(other.slots_),
      tombstones_(other.tombstones_),
      max_texp_(other.max_texp_) {}

Relation& Relation::operator=(const Relation& other) {
  if (this != &other) {
    schema_ = other.schema_;
    entries_ = other.entries_;
    slots_ = other.slots_;
    tombstones_ = other.tombstones_;
    max_texp_ = other.max_texp_;
    // Assignment replaces this object's contents wholesale; any recorded
    // history no longer describes them.
    delete delta_.exchange(nullptr, std::memory_order_acq_rel);
  }
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : schema_(std::move(other.schema_)),
      entries_(std::move(other.entries_)),
      slots_(std::move(other.slots_)),
      tombstones_(other.tombstones_),
      max_texp_(other.max_texp_),
      delta_(other.delta_.exchange(nullptr, std::memory_order_acq_rel)) {}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this != &other) {
    schema_ = std::move(other.schema_);
    entries_ = std::move(other.entries_);
    slots_ = std::move(other.slots_);
    tombstones_ = other.tombstones_;
    max_texp_ = other.max_texp_;
    delete delta_.exchange(
        other.delta_.exchange(nullptr, std::memory_order_acq_rel),
        std::memory_order_acq_rel);
  }
  return *this;
}

Relation::~Relation() {
  delete delta_.load(std::memory_order_acquire);
}

// --- delta capture --------------------------------------------------------

void Relation::EnableDeltaTracking(size_t ring_capacity) const {
  if (delta_log() != nullptr) return;
  auto* log = new DeltaLog();
  log->instance_id = NextDeltaInstanceId();
  log->capacity = ring_capacity > 0 ? ring_capacity : 1;
  // First publisher wins; a concurrent enable that lost the race frees
  // its candidate. Readers pair with the acquire load in delta_log().
  DeltaLog* expected = nullptr;
  if (!delta_.compare_exchange_strong(expected, log,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
    delete log;
  }
}

uint64_t Relation::delta_instance_id() const {
  const DeltaLog* log = delta_log();
  return log != nullptr ? log->instance_id : 0;
}

uint64_t Relation::delta_epoch() const {
  const DeltaLog* log = delta_log();
  return log != nullptr ? log->epoch : 0;
}

std::optional<std::vector<Relation::DeltaBatch>> Relation::DeltasSince(
    uint64_t since) const {
  const DeltaLog* log = delta_log();
  if (log == nullptr) return std::nullopt;
  // A cursor from the future (or from another relation's clock) or one
  // older than the retained window cannot be served exactly.
  if (since > log->epoch || since < log->floor) return std::nullopt;
  std::vector<DeltaBatch> out;
  for (const DeltaBatch& b : log->batches) {
    if (b.epoch > since) out.push_back(b);
  }
  return out;
}

void Relation::RecordDeltaInsert(const Tuple& tuple, Timestamp texp) {
  DeltaLog* log = delta_log();
  if (log == nullptr) return;
  DeltaBatch b;
  b.epoch = ++log->epoch;
  b.inserted.push_back(Entry{tuple, texp});
  log->batches.push_back(std::move(b));
  TrimDeltaRing();
}

void Relation::RecordDeltaUpdate(const Tuple& tuple, Timestamp old_texp,
                                 Timestamp new_texp) {
  DeltaLog* log = delta_log();
  if (log == nullptr) return;
  DeltaBatch b;
  b.epoch = ++log->epoch;
  b.deleted.push_back(Entry{tuple, old_texp});
  b.inserted.push_back(Entry{tuple, new_texp});
  log->batches.push_back(std::move(b));
  TrimDeltaRing();
}

void Relation::RecordDeltaErase(const Tuple& tuple, Timestamp old_texp) {
  DeltaLog* log = delta_log();
  if (log == nullptr) return;
  DeltaBatch b;
  b.epoch = ++log->epoch;
  b.deleted.push_back(Entry{tuple, old_texp});
  log->batches.push_back(std::move(b));
  TrimDeltaRing();
}

void Relation::TrimDeltaRing() {
  DeltaLog* log = delta_log();
  while (log->batches.size() > log->capacity) {
    log->floor = log->batches.front().epoch;
    log->batches.pop_front();
  }
}

void Relation::BreakDeltaHistory() {
  DeltaLog* log = delta_log();
  if (log == nullptr) return;
  log->batches.clear();
  log->floor = ++log->epoch;
}

// --- hash index -----------------------------------------------------------

size_t Relation::FindSlot(const Tuple& tuple) const {
  if (slots_.empty()) return kNotFound;
  const size_t mask = slots_.size() - 1;
  size_t slot = tuple.Hash() & mask;
  for (;;) {
    const int64_t s = slots_[slot];
    if (s == kEmpty) return kNotFound;
    if (s != kTombstone &&
        entries_[static_cast<size_t>(s)].tuple == tuple) {
      return slot;
    }
    slot = (slot + 1) & mask;
  }
}

size_t Relation::FindEntry(const Tuple& tuple) const {
  const size_t slot = FindSlot(tuple);
  return slot == kNotFound ? kNotFound
                           : static_cast<size_t>(slots_[slot]);
}

void Relation::Rehash(size_t n) {
  // Load factor 0.7: capacity such that n < 0.7 * cap.
  slots_.assign(NextPow2(n * 10 / 7 + 1), kEmpty);
  tombstones_ = 0;
  const size_t mask = slots_.size() - 1;
  for (size_t i = 0; i < entries_.size(); ++i) {
    size_t slot = entries_[i].tuple.Hash() & mask;
    while (slots_[slot] != kEmpty) slot = (slot + 1) & mask;
    slots_[slot] = static_cast<int64_t>(i);
  }
}

void Relation::RebuildIndex() { Rehash(entries_.size()); }

void Relation::EnsureSlotCapacity() {
  if (slots_.empty() ||
      (entries_.size() + tombstones_ + 1) * 10 >= slots_.size() * 7) {
    Rehash(entries_.size() + 1);
  }
}

std::pair<size_t, bool> Relation::InsertEntry(Tuple tuple, Timestamp texp) {
  // Maintain the texp upper bound unconditionally: on the duplicate path
  // the caller may still raise the stored texp to `texp` (InsertUnchecked
  // overwrites, MergeMaxUnchecked maxes), so `texp` always has to be
  // covered by the bound. Overestimation is safe; understating is not.
  max_texp_ = Timestamp::Max(max_texp_, texp);
  EnsureSlotCapacity();
  const size_t mask = slots_.size() - 1;
  size_t slot = tuple.Hash() & mask;
  size_t first_tombstone = kNotFound;
  for (;;) {
    const int64_t s = slots_[slot];
    if (s == kEmpty) break;
    if (s == kTombstone) {
      if (first_tombstone == kNotFound) first_tombstone = slot;
    } else if (entries_[static_cast<size_t>(s)].tuple == tuple) {
      return {static_cast<size_t>(s), false};
    }
    slot = (slot + 1) & mask;
  }
  if (first_tombstone != kNotFound) {
    slot = first_tombstone;
    --tombstones_;
  }
  const size_t entry_idx = entries_.size();
  entries_.push_back(Entry{std::move(tuple), texp});
  slots_[slot] = static_cast<int64_t>(entry_idx);
  return {entry_idx, true};
}

void Relation::EraseAt(size_t entry_idx, size_t slot) {
  slots_[slot] = kTombstone;
  ++tombstones_;
  const size_t last = entries_.size() - 1;
  if (entry_idx != last) {
    // Patch the index slot of the entry being moved into the hole.
    const size_t moved_slot = FindSlot(entries_[last].tuple);
    assert(moved_slot != kNotFound);
    slots_[moved_slot] = static_cast<int64_t>(entry_idx);
    entries_[entry_idx] = std::move(entries_[last]);
  }
  entries_.pop_back();
  if (entries_.empty()) {
    slots_.clear();
    tombstones_ = 0;
  }
}

void Relation::Reserve(size_t n) {
  entries_.reserve(n);
  if (n * 10 / 7 + 1 > slots_.size()) Rehash(n);
}

Relation Relation::FromEntriesUnchecked(Schema schema,
                                        std::vector<Entry> entries) {
  Relation out(std::move(schema));
  out.entries_ = std::move(entries);
  for (const Entry& e : out.entries_) {
    out.max_texp_ = Timestamp::Max(out.max_texp_, e.texp);
  }
  if (!out.entries_.empty()) out.RebuildIndex();
  return out;
}

// --- schema checking ------------------------------------------------------

Status Relation::CheckAndCoerce(Tuple* tuple) const {
  if (tuple->arity() != schema_.arity()) {
    return Status::TypeError(
        "tuple " + tuple->ToString() + " has arity " +
        std::to_string(tuple->arity()) + ", schema " + schema_.ToString() +
        " requires " + std::to_string(schema_.arity()));
  }
  std::vector<Value> coerced;
  bool needs_rebuild = false;
  for (size_t i = 0; i < tuple->arity(); ++i) {
    const Value& v = tuple->at(i);
    const ValueType want = schema_.attribute(i).type;
    if (v.type() == want) continue;
    if (want == ValueType::kDouble && v.is_int64()) {
      if (!needs_rebuild) {
        coerced = tuple->values();
        needs_rebuild = true;
      }
      coerced[i] = Value(static_cast<double>(v.AsInt64()));
      continue;
    }
    return Status::TypeError(
        "attribute " + std::to_string(i + 1) + " of " + tuple->ToString() +
        " has type " + std::string(ValueTypeToString(v.type())) +
        ", schema " + schema_.ToString() + " requires " +
        std::string(ValueTypeToString(want)));
  }
  if (needs_rebuild) *tuple = Tuple(std::move(coerced));
  return Status::OK();
}

// --- mutation -------------------------------------------------------------

Status Relation::Insert(Tuple tuple, Timestamp texp) {
  EXPDB_RETURN_NOT_OK(CheckAndCoerce(&tuple));
  MergeMaxUnchecked(std::move(tuple), texp);
  return Status::OK();
}

Status Relation::InsertWithTtl(Tuple tuple, Timestamp now, int64_t ttl) {
  if (ttl < 0) {
    return Status::InvalidArgument("ttl must be non-negative, got " +
                                   std::to_string(ttl));
  }
  return Insert(std::move(tuple), now + ttl);
}

void Relation::InsertUnchecked(Tuple tuple, Timestamp texp) {
  auto [idx, inserted] = InsertEntry(std::move(tuple), texp);
  if (inserted) {
    RecordDeltaInsert(entries_[idx].tuple, texp);
  } else {
    const Timestamp old = entries_[idx].texp;
    entries_[idx].texp = texp;
    if (old != texp) RecordDeltaUpdate(entries_[idx].tuple, old, texp);
  }
}

void Relation::MergeMaxUnchecked(Tuple tuple, Timestamp texp) {
  auto [idx, inserted] = InsertEntry(std::move(tuple), texp);
  if (inserted) {
    RecordDeltaInsert(entries_[idx].tuple, texp);
  } else {
    const Timestamp old = entries_[idx].texp;
    const Timestamp merged = Timestamp::Max(old, texp);
    entries_[idx].texp = merged;
    if (merged != old) RecordDeltaUpdate(entries_[idx].tuple, old, merged);
  }
}

bool Relation::Erase(const Tuple& tuple) {
  const size_t slot = FindSlot(tuple);
  if (slot == kNotFound) return false;
  const size_t entry_idx = static_cast<size_t>(slots_[slot]);
  RecordDeltaErase(entries_[entry_idx].tuple, entries_[entry_idx].texp);
  EraseAt(entry_idx, slot);
  return true;
}

// --- lookups and scans ----------------------------------------------------

std::optional<Timestamp> Relation::GetTexp(const Tuple& tuple) const {
  const size_t idx = FindEntry(tuple);
  if (idx == kNotFound) return std::nullopt;
  return entries_[idx].texp;
}

bool Relation::ContainsUnexpired(const Tuple& tuple, Timestamp tau) const {
  const size_t idx = FindEntry(tuple);
  return idx != kNotFound && entries_[idx].texp > tau;
}

Relation Relation::UnexpiredAt(Timestamp tau) const {
  std::vector<Entry> kept;
  kept.reserve(entries_.size());
  for (const Entry& e : entries_) {
    if (e.texp > tau) kept.push_back(e);
  }
  return FromEntriesUnchecked(schema_, std::move(kept));
}

void Relation::ForEachUnexpired(
    Timestamp tau,
    const std::function<void(const Tuple&, Timestamp)>& fn) const {
  for (const Entry& e : entries_) {
    if (e.texp > tau) fn(e.tuple, e.texp);
  }
}

void Relation::ForEach(
    const std::function<void(const Tuple&, Timestamp)>& fn) const {
  for (const Entry& e : entries_) fn(e.tuple, e.texp);
}

size_t Relation::CountUnexpiredAt(Timestamp tau) const {
  size_t n = 0;
  for (const Entry& e : entries_) {
    if (e.texp > tau) ++n;
  }
  return n;
}

std::vector<std::pair<Tuple, Timestamp>> Relation::RemoveExpired(
    Timestamp tau) {
  std::vector<std::pair<Tuple, Timestamp>> removed;
  size_t kept = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].texp <= tau) {
      removed.emplace_back(std::move(entries_[i].tuple), entries_[i].texp);
    } else {
      if (kept != i) entries_[kept] = std::move(entries_[i]);
      ++kept;
    }
  }
  if (!removed.empty()) {
    entries_.resize(kept);
    if (entries_.empty()) {
      slots_.clear();
      tombstones_ = 0;
    } else {
      RebuildIndex();
    }
  }
  std::sort(removed.begin(), removed.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
  return removed;
}

std::optional<Timestamp> Relation::NextExpirationAfter(Timestamp tau) const {
  std::optional<Timestamp> best;
  for (const Entry& e : entries_) {
    if (e.texp > tau && e.texp.IsFinite()) {
      if (!best || e.texp < *best) best = e.texp;
    }
  }
  return best;
}

std::vector<std::pair<Tuple, Timestamp>> Relation::SortedEntries() const {
  std::vector<std::pair<Tuple, Timestamp>> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.emplace_back(e.tuple, e.texp);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.first < b.first;
  });
  return out;
}

bool Relation::ContentsEqualAt(const Relation& a, const Relation& b,
                               Timestamp tau) {
  if (a.CountUnexpiredAt(tau) != b.CountUnexpiredAt(tau)) return false;
  for (const Entry& e : a.entries_) {
    if (e.texp > tau && !b.ContainsUnexpired(e.tuple, tau)) return false;
  }
  return true;
}

bool Relation::EqualAt(const Relation& a, const Relation& b, Timestamp tau) {
  if (a.CountUnexpiredAt(tau) != b.CountUnexpiredAt(tau)) return false;
  for (const Entry& e : a.entries_) {
    if (e.texp <= tau) continue;
    auto other = b.GetTexp(e.tuple);
    if (!other || *other <= tau || *other != e.texp) return false;
  }
  return true;
}

Status Relation::RenameAttributes(const std::vector<std::string>& names) {
  if (names.size() != schema_.arity()) {
    return Status::InvalidArgument(
        "rename needs " + std::to_string(schema_.arity()) + " names, got " +
        std::to_string(names.size()));
  }
  std::vector<Attribute> attrs = schema_.attributes();
  for (size_t i = 0; i < names.size(); ++i) attrs[i].name = names[i];
  EXPDB_ASSIGN_OR_RETURN(Schema renamed, Schema::Make(std::move(attrs)));
  schema_ = std::move(renamed);
  // A schema change invalidates any consumer interpreting recorded deltas
  // against the old attribute names; force them back onto the full path.
  BreakDeltaHistory();
  return Status::OK();
}

std::string Relation::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [tuple, texp] : SortedEntries()) {
    if (!first) out += ", ";
    first = false;
    out += tuple.ToString() + "@" + texp.ToString();
  }
  out += "}";
  return out;
}

}  // namespace expdb
