// Rendering of relations as the paper's tables (Figure 1 style):
// a texp column followed by the attribute columns.

#ifndef EXPDB_RELATIONAL_PRINTER_H_
#define EXPDB_RELATIONAL_PRINTER_H_

#include <string>

#include "common/timestamp.h"
#include "relational/relation.h"

namespace expdb {

/// Rendering options for PrintRelation.
struct PrintOptions {
  /// Show the (non-user-accessible) texp column. The paper typesets it
  /// differently from the relation attributes; we put it first, as in
  /// Figure 1.
  bool show_texp = true;
  /// Restrict output to expτ(R) at this time.
  Timestamp at = Timestamp::Zero();
  /// When false, print all stored tuples regardless of expiration.
  bool filter_expired = true;
  /// Caption printed above the table (e.g. "Politics table Pol").
  std::string caption;
};

/// \brief Renders the relation as an aligned ASCII table.
std::string PrintRelation(const Relation& relation,
                          const PrintOptions& options = {});

/// \brief Renders only the tuples, one "<a, b>" per line, sorted — the
/// compact form the paper uses in Figures 2 and 3. Prints "(the query is
/// empty)" for an empty result, as Figure 2(g) does.
std::string PrintTuples(const Relation& relation, Timestamp at);

}  // namespace expdb

#endif  // EXPDB_RELATIONAL_PRINTER_H_
