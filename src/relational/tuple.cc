#include "relational/tuple.h"

#include <cassert>

#include "common/str_util.h"

namespace expdb {

namespace {

// Boost-style hash combiner.
size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

constexpr size_t kHashSeed = 0x5bd1e9955bd1e995ULL;

}  // namespace

size_t Tuple::HashValues(const std::vector<Value>& values) {
  size_t seed = kHashSeed;
  for (const Value& v : values) seed = HashCombine(seed, v.Hash());
  return seed;
}

size_t Tuple::HashOfColumns(const std::vector<size_t>& indices) const {
  size_t seed = kHashSeed;
  for (size_t i : indices) {
    assert(i < values_.size());
    seed = HashCombine(seed, values_[i].Hash());
  }
  return seed;
}

Tuple Tuple::Concat(const Tuple& other) const {
  std::vector<Value> vals = values_;
  vals.insert(vals.end(), other.values_.begin(), other.values_.end());
  return Tuple(std::move(vals));
}

Tuple Tuple::Project(const std::vector<size_t>& indices) const {
  std::vector<Value> vals;
  vals.reserve(indices.size());
  for (size_t i : indices) {
    assert(i < values_.size());
    vals.push_back(values_[i]);
  }
  return Tuple(std::move(vals));
}

Tuple Tuple::Prefix(size_t n) const {
  assert(n <= values_.size());
  return Tuple(std::vector<Value>(values_.begin(), values_.begin() + n));
}

Tuple Tuple::Suffix(size_t from) const {
  assert(from <= values_.size());
  return Tuple(std::vector<Value>(values_.begin() + from, values_.end()));
}

Tuple Tuple::Append(Value v) const {
  std::vector<Value> vals = values_;
  vals.push_back(std::move(v));
  return Tuple(std::move(vals));
}

bool Tuple::operator<(const Tuple& other) const {
  const size_t n = std::min(values_.size(), other.values_.size());
  for (size_t i = 0; i < n; ++i) {
    auto cmp = values_[i].Compare(other.values_[i]);
    if (cmp != std::strong_ordering::equal) {
      return cmp == std::strong_ordering::less;
    }
  }
  return values_.size() < other.values_.size();
}

std::string Tuple::ToString() const {
  return "<" + JoinToString(values_, ", ") + ">";
}

std::ostream& operator<<(std::ostream& os, const Tuple& t) {
  return os << t.ToString();
}

}  // namespace expdb
