#include "relational/tuple.h"

#include <cassert>

#include "common/str_util.h"

namespace expdb {

namespace {

// Boost-style hash combiner.
size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

constexpr size_t kHashSeed = 0x5bd1e9955bd1e995ULL;

}  // namespace

Tuple::Tuple() : hash_(kHashSeed) {}

Tuple::Tuple(std::vector<Value> values)
    : values_(values.empty()
                  ? nullptr
                  : std::make_shared<const std::vector<Value>>(
                        std::move(values))),
      hash_(HashValues(this->values())) {}

Tuple::Tuple(std::initializer_list<Value> values)
    : Tuple(std::vector<Value>(values)) {}

const std::vector<Value>& Tuple::EmptyValues() {
  static const std::vector<Value> empty;
  return empty;
}

size_t Tuple::HashValues(const std::vector<Value>& values) {
  size_t seed = kHashSeed;
  for (const Value& v : values) seed = HashCombine(seed, v.Hash());
  return seed;
}

size_t Tuple::HashOfColumns(const std::vector<size_t>& indices) const {
  const std::vector<Value>& vals = values();
  size_t seed = kHashSeed;
  for (size_t i : indices) {
    assert(i < vals.size());
    seed = HashCombine(seed, vals[i].Hash());
  }
  return seed;
}

Tuple Tuple::Concat(const Tuple& other) const {
  std::vector<Value> vals = values();
  vals.insert(vals.end(), other.values().begin(), other.values().end());
  return Tuple(std::move(vals));
}

Tuple Tuple::Project(const std::vector<size_t>& indices) const {
  const std::vector<Value>& in = values();
  std::vector<Value> vals;
  vals.reserve(indices.size());
  for (size_t i : indices) {
    assert(i < in.size());
    vals.push_back(in[i]);
  }
  return Tuple(std::move(vals));
}

Tuple Tuple::Prefix(size_t n) const {
  const std::vector<Value>& in = values();
  assert(n <= in.size());
  return Tuple(std::vector<Value>(in.begin(), in.begin() + n));
}

Tuple Tuple::Suffix(size_t from) const {
  const std::vector<Value>& in = values();
  assert(from <= in.size());
  return Tuple(std::vector<Value>(in.begin() + from, in.end()));
}

Tuple Tuple::Append(Value v) const {
  std::vector<Value> vals = values();
  vals.push_back(std::move(v));
  return Tuple(std::move(vals));
}

bool Tuple::operator<(const Tuple& other) const {
  const std::vector<Value>& a = values();
  const std::vector<Value>& b = other.values();
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    auto cmp = a[i].Compare(b[i]);
    if (cmp != std::strong_ordering::equal) {
      return cmp == std::strong_ordering::less;
    }
  }
  return a.size() < b.size();
}

std::string Tuple::ToString() const {
  return "<" + JoinToString(values(), ", ") + ">";
}

std::ostream& operator<<(std::ostream& os, const Tuple& t) {
  return os << t.ToString();
}

}  // namespace expdb
