#include "relational/schema.h"

#include <unordered_set>

#include "common/str_util.h"

namespace expdb {

std::string Attribute::ToString() const {
  return name + ":" + std::string(ValueTypeToString(type));
}

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {}

Result<Schema> Schema::Make(std::vector<Attribute> attributes) {
  std::unordered_set<std::string> seen;
  for (const Attribute& attr : attributes) {
    if (attr.name.empty()) {
      return Status::InvalidArgument("attribute name must not be empty");
    }
    if (!seen.insert(attr.name).second) {
      return Status::InvalidArgument("duplicate attribute name '" +
                                     attr.name + "'");
    }
  }
  return Schema(std::move(attributes));
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("no attribute named '" + name + "' in " +
                          ToString());
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<Attribute> attrs = attributes_;
  std::unordered_set<std::string> names;
  for (const Attribute& a : attrs) names.insert(a.name);
  for (Attribute a : other.attributes_) {
    std::string candidate = a.name;
    int suffix = 2;
    while (names.count(candidate) > 0) {
      candidate = a.name + "." + std::to_string(suffix++);
    }
    a.name = candidate;
    names.insert(candidate);
    attrs.push_back(std::move(a));
  }
  return Schema(std::move(attrs));
}

Result<Schema> Schema::Project(const std::vector<size_t>& indices) const {
  std::vector<Attribute> attrs;
  attrs.reserve(indices.size());
  std::unordered_set<std::string> names;
  for (size_t i : indices) {
    if (!IsValidIndex(i)) {
      return Status::OutOfRange("projection index " + std::to_string(i) +
                                " out of range for " + ToString());
    }
    Attribute a = attributes_[i];
    // A repeated projection of the same column needs a fresh name.
    std::string candidate = a.name;
    int suffix = 2;
    while (names.count(candidate) > 0) {
      candidate = a.name + "." + std::to_string(suffix++);
    }
    a.name = candidate;
    names.insert(candidate);
    attrs.push_back(std::move(a));
  }
  return Schema(std::move(attrs));
}

bool Schema::UnionCompatibleWith(const Schema& other) const {
  if (arity() != other.arity()) return false;
  for (size_t i = 0; i < arity(); ++i) {
    if (attributes_[i].type != other.attributes_[i].type) return false;
  }
  return true;
}

std::string Schema::ToString() const {
  return "(" + JoinToString(attributes_, ", ") + ")";
}

}  // namespace expdb
