// Database: a catalog of named base relations.
//
// The paper's loosely-coupled setting assumes base relations are only
// modified by inserts and by expiration; Database additionally supports
// explicit deletes and updates for practical completeness (see DESIGN.md
// §6 for the interaction with view independence).

#ifndef EXPDB_RELATIONAL_DATABASE_H_
#define EXPDB_RELATIONAL_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/relation.h"

namespace expdb {

/// \brief A named collection of base relations.
class Database {
 public:
  Database() = default;

  // Movable, not copyable: relations may be large and accidental catalog
  // copies are almost always bugs.
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// \brief Creates an empty relation under `name`.
  /// \return the new relation, or AlreadyExists.
  Result<Relation*> CreateRelation(const std::string& name, Schema schema);

  /// \brief Registers an already-populated relation under `name`.
  Status PutRelation(const std::string& name, Relation relation);

  /// \brief Looks up a relation (mutable).
  Result<Relation*> GetRelation(const std::string& name);

  /// \brief Looks up a relation (read-only).
  Result<const Relation*> GetRelation(const std::string& name) const;

  bool HasRelation(const std::string& name) const {
    return relations_.find(name) != relations_.end();
  }

  /// \brief Inserts `tuple` into the named relation (max-merging texp on
  /// duplicates, like Relation::Insert).
  ///
  /// This is the delta-friendly update path: when the target relation has
  /// delta tracking enabled (the view layer turns it on for view bases),
  /// the mutation is recorded in its delta ring and dependent materialized
  /// views can be maintained incrementally. `PutRelation` wholesale
  /// replacement, by contrast, always forces the full-recompute path.
  Status Insert(const std::string& name, Tuple tuple,
                Timestamp texp = Timestamp::Infinity());

  /// \brief Erases `tuple` from the named relation.
  /// \return true if a tuple was erased, false if it was absent; NotFound
  /// if the relation does not exist. Recorded in the delta ring like
  /// `Insert`.
  Result<bool> Erase(const std::string& name, const Tuple& tuple);

  /// \brief Drops the named relation.
  Status DropRelation(const std::string& name);

  /// \brief Relation names in sorted order.
  std::vector<std::string> RelationNames() const;

  size_t relation_count() const { return relations_.size(); }

  /// \brief Physically removes expired tuples from every relation.
  /// \return total number of removed tuples.
  size_t RemoveExpiredEverywhere(Timestamp tau);

 private:
  // std::map keeps iteration deterministic; unique_ptr keeps Relation*
  // handles stable across catalog growth.
  std::map<std::string, std::unique_ptr<Relation>> relations_;
};

}  // namespace expdb

#endif  // EXPDB_RELATIONAL_DATABASE_H_
