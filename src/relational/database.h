// Database: a catalog of named base relations.
//
// The paper's loosely-coupled setting assumes base relations are only
// modified by inserts and by expiration; Database additionally supports
// explicit deletes and updates for practical completeness (see DESIGN.md
// §6 for the interaction with view independence).

#ifndef EXPDB_RELATIONAL_DATABASE_H_
#define EXPDB_RELATIONAL_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/relation.h"

namespace expdb {

/// \brief A named collection of base relations.
class Database {
 public:
  Database() = default;

  // Movable, not copyable: relations may be large and accidental catalog
  // copies are almost always bugs. Moves are single-threaded operations
  // (nobody may hold locks from relation_lock() across a move); the
  // moved-from database is left empty with a fresh lock table.
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&& other) noexcept
      : relations_(std::move(other.relations_)),
        locks_(std::move(other.locks_)),
        epoch_(other.epoch_.load(std::memory_order_relaxed)) {}
  Database& operator=(Database&& other) noexcept {
    if (this != &other) {
      relations_ = std::move(other.relations_);
      locks_ = std::move(other.locks_);
      epoch_.store(other.epoch_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    }
    return *this;
  }

  /// \brief Creates an empty relation under `name`.
  /// \return the new relation, or AlreadyExists.
  Result<Relation*> CreateRelation(const std::string& name, Schema schema);

  /// \brief Registers an already-populated relation under `name`.
  Status PutRelation(const std::string& name, Relation relation);

  /// \brief Looks up a relation (mutable).
  Result<Relation*> GetRelation(const std::string& name);

  /// \brief Looks up a relation (read-only).
  Result<const Relation*> GetRelation(const std::string& name) const;

  bool HasRelation(const std::string& name) const {
    return relations_.find(name) != relations_.end();
  }

  /// \brief Inserts `tuple` into the named relation (max-merging texp on
  /// duplicates, like Relation::Insert).
  ///
  /// This is the delta-friendly update path: when the target relation has
  /// delta tracking enabled (the view layer turns it on for view bases),
  /// the mutation is recorded in its delta ring and dependent materialized
  /// views can be maintained incrementally. `PutRelation` wholesale
  /// replacement, by contrast, always forces the full-recompute path.
  Status Insert(const std::string& name, Tuple tuple,
                Timestamp texp = Timestamp::Infinity());

  /// \brief Erases `tuple` from the named relation.
  /// \return true if a tuple was erased, false if it was absent; NotFound
  /// if the relation does not exist. Recorded in the delta ring like
  /// `Insert`.
  Result<bool> Erase(const std::string& name, const Tuple& tuple);

  /// \brief Drops the named relation.
  Status DropRelation(const std::string& name);

  /// \brief Relation names in sorted order.
  std::vector<std::string> RelationNames() const;

  size_t relation_count() const { return relations_.size(); }

  /// \brief Physically removes expired tuples from every relation.
  /// \return total number of removed tuples.
  size_t RemoveExpiredEverywhere(Timestamp tau);

  // --- concurrency plumbing (engine layer; docs/CONCURRENCY.md) -----------
  //
  // The database itself stays a passive catalog: it does not lock around
  // its own mutators. Instead it supplies the two primitives the engine's
  // epoch-versioned scheme is built from — a per-relation reader/writer
  // lock and a catalog-wide mutation epoch — and the engine (or any other
  // coordinator) enforces the locking protocol.

  /// \brief The reader/writer lock guarding the named relation's body.
  /// Created on first request and never discarded (locks must outlive
  /// DROP so a guard held across a drop stays valid); the lock table is
  /// internally synchronized and safe to call from any thread.
  std::shared_mutex& relation_lock(const std::string& name) const {
    std::lock_guard<std::mutex> guard(locks_mu_);
    auto [it, inserted] = locks_.try_emplace(name, nullptr);
    if (inserted) it->second = std::make_unique<std::shared_mutex>();
    return *it->second;
  }

  /// \brief Monotone catalog version: bumped by every Database-level
  /// mutator and by writers releasing an engine write guard. Snapshot
  /// readers record it; an unchanged epoch means "no write completed in
  /// between".
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// \brief Advances the epoch (writers call this after mutating).
  void BumpEpoch() { epoch_.fetch_add(1, std::memory_order_acq_rel); }

 private:
  // std::map keeps iteration deterministic; unique_ptr keeps Relation*
  // handles stable across catalog growth.
  std::map<std::string, std::unique_ptr<Relation>> relations_;
  /// Per-relation locks; unique_ptr keeps shared_mutex addresses stable
  /// across map growth. Guarded by locks_mu_ (the mutexes themselves are
  /// of course used unguarded).
  mutable std::map<std::string, std::unique_ptr<std::shared_mutex>> locks_;
  mutable std::mutex locks_mu_;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace expdb

#endif  // EXPDB_RELATIONAL_DATABASE_H_
