#include "relational/printer.h"

#include <algorithm>
#include <vector>

#include "common/str_util.h"

namespace expdb {

std::string PrintRelation(const Relation& relation,
                          const PrintOptions& options) {
  const Schema& schema = relation.schema();
  const size_t ncols = schema.arity() + (options.show_texp ? 1 : 0);

  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header;
  if (options.show_texp) header.push_back("texp");
  for (const Attribute& a : schema.attributes()) header.push_back(a.name);
  rows.push_back(header);

  for (const auto& [tuple, texp] : relation.SortedEntries()) {
    if (options.filter_expired && texp <= options.at) continue;
    std::vector<std::string> row;
    if (options.show_texp) row.push_back(texp.ToString());
    for (const Value& v : tuple.values()) row.push_back(v.ToString());
    rows.push_back(std::move(row));
  }

  std::vector<size_t> widths(ncols, 0);
  for (const auto& row : rows) {
    for (size_t c = 0; c < ncols; ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  if (!options.caption.empty()) out += options.caption + "\n";
  for (size_t r = 0; r < rows.size(); ++r) {
    out += "|";
    for (size_t c = 0; c < ncols; ++c) {
      out += " " + PadLeft(rows[r][c], widths[c]) + " |";
    }
    out += "\n";
    if (r == 0) {
      out += "|";
      for (size_t c = 0; c < ncols; ++c) {
        out += std::string(widths[c] + 2, '-') + "|";
      }
      out += "\n";
    }
  }
  return out;
}

std::string PrintTuples(const Relation& relation, Timestamp at) {
  std::vector<Tuple> tuples;
  relation.ForEachUnexpired(at, [&](const Tuple& t, Timestamp) {
    tuples.push_back(t);
  });
  if (tuples.empty()) return "(the query is empty)\n";
  std::sort(tuples.begin(), tuples.end());
  std::string out;
  for (const Tuple& t : tuples) out += t.ToString() + "\n";
  return out;
}

}  // namespace expdb
