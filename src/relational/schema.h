// Schema: attribute names and types of a relation.
//
// The paper's model identifies attributes by position 1..α(R); ExpDB keeps
// names for usability (SQL layer, printing) but the algebra addresses
// attributes positionally, exactly as in the paper. Positions in the public
// C++ API are 0-based; the SQL layer and printers render them 1-based where
// they quote the paper.

#ifndef EXPDB_RELATIONAL_SCHEMA_H_
#define EXPDB_RELATIONAL_SCHEMA_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace expdb {

/// \brief One named, typed attribute.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kInt64;

  bool operator==(const Attribute& other) const = default;
  std::string ToString() const;
};

/// \brief An ordered list of attributes; α(R) is its size.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  /// \brief Builds a schema, rejecting duplicate or empty attribute names.
  static Result<Schema> Make(std::vector<Attribute> attributes);

  /// The arity α(R).
  size_t arity() const { return attributes_.size(); }

  const std::vector<Attribute>& attributes() const { return attributes_; }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }

  /// \brief Index of the attribute with the given name (exact match).
  Result<size_t> IndexOf(const std::string& name) const;

  /// \brief True iff `i` < arity.
  bool IsValidIndex(size_t i) const { return i < attributes_.size(); }

  /// \brief Schema of R × S: attributes of R followed by attributes of S.
  /// Colliding names are disambiguated with a ".2" suffix.
  Schema Concat(const Schema& other) const;

  /// \brief Schema of π_{j1..jn}(R). All indices must be valid.
  Result<Schema> Project(const std::vector<size_t>& indices) const;

  /// \brief Union compatibility per the paper: equal arity; ExpDB also
  /// requires pairwise equal types (names may differ).
  bool UnionCompatibleWith(const Schema& other) const;

  /// \brief Structural equality (names and types).
  bool operator==(const Schema& other) const = default;

  /// Renders "(name:type, ...)".
  std::string ToString() const;

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace expdb

#endif  // EXPDB_RELATIONAL_SCHEMA_H_
