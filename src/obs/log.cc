#include "obs/log.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace expdb {
namespace obs {

namespace {

Counter* EmittedCounter() {
  static Counter* counter = MetricsRegistry::Global().GetCounter(
      "expdb_log_events_total", "Structured log events emitted");
  return counter;
}

Counter* DroppedCounter() {
  static Counter* counter = MetricsRegistry::Global().GetCounter(
      "expdb_log_events_dropped_total",
      "Structured log events overwritten by ring overflow");
  return counter;
}

Counter* WriteErrorsCounter() {
  static Counter* counter = MetricsRegistry::Global().GetCounter(
      "expdb_event_log_write_errors_total",
      "Event log sink lines that failed to reach the file");
  return counter;
}

}  // namespace

std::string_view LogSeverityToString(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "debug";
    case LogSeverity::kInfo:
      return "info";
    case LogSeverity::kWarn:
      return "warn";
    case LogSeverity::kError:
      return "error";
  }
  return "?";
}

std::string LogEvent::ToJson() const {
  std::string out = "{\"ts_ns\":" + std::to_string(ts_ns) +
                    ",\"severity\":\"" +
                    std::string(LogSeverityToString(severity)) +
                    "\",\"component\":\"" + JsonEscape(component) +
                    "\",\"event\":\"" + JsonEscape(event) + "\"";
  if (trace_id != 0) {
    out += ",\"trace_id\":" + std::to_string(trace_id) +
           ",\"span_id\":" + std::to_string(span_id);
  }
  out += ",\"fields\":{";
  bool first = true;
  for (const LogField& f : fields) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(f.first) + "\":\"" + JsonEscape(f.second) + "\"";
  }
  out += "}}";
  return out;
}

EventLog::EventLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

EventLog::~EventLog() { CloseSink(); }

void EventLog::Emit(LogSeverity severity, std::string component,
                    std::string event, std::vector<LogField> fields) {
  if (!enabled()) return;
  LogEvent record;
  record.ts_ns = SteadyNowNs();
  record.severity = severity;
  record.component = std::move(component);
  record.event = std::move(event);
  const TraceContext ctx = CurrentTraceContext();
  record.trace_id = ctx.trace_id;
  record.span_id = ctx.span_id;
  record.fields = std::move(fields);

  EmittedCounter()->Increment();
  total_.fetch_add(1, std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(mu_);
  if (sink_.is_open()) {
    // Flush per line: the sink is a low-rate decision log meant for
    // `tail -f`, and Global() is a leaked singleton whose destructor
    // (and buffered bytes) would otherwise never reach the file on
    // process exit.
    sink_ << record.ToJson() << "\n" << std::flush;
    if (!sink_.good()) {
      // Disk full / revoked path: count the loss (MONITOR STATUS and
      // expdb_event_log_write_errors_total surface it) and clear the
      // stream state so later lines retry once the condition clears.
      write_errors_.fetch_add(1, std::memory_order_relaxed);
      WriteErrorsCounter()->Increment();
      last_sink_error_ = "write to sink failed";
      sink_.clear();
    }
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    // A sunk event was still exported; only count the loss when the
    // overwritten event never reached a file.
    if (!sink_.is_open()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      DroppedCounter()->Increment();
    }
    ring_[write_pos_] = std::move(record);
  }
  write_pos_ = (write_pos_ + 1) % capacity_;
}

std::vector<LogEvent> EventLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LogEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(write_pos_ + i) % capacity_]);
    }
  }
  return out;
}

std::string EventLog::JsonlText() const {
  std::string out;
  for (const LogEvent& e : Snapshot()) {
    out += e.ToJson();
    out += "\n";
  }
  return out;
}

void EventLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  write_pos_ = 0;
}

bool EventLog::OpenSink(const std::string& path, std::string* error) {
  std::string failure;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sink_.is_open()) {
      sink_.flush();
      sink_.close();
    }
    sink_.clear();
    sink_.open(path, std::ios::out | std::ios::trunc);
    if (!sink_.is_open()) {
      failure = "cannot open '" + path + "' for writing";
      last_sink_error_ = failure;
    }
  }
  if (!failure.empty()) {
    // Not silently swallowed: the failure lands in the ring as a warning
    // event (outside mu_ — Emit re-takes it) and in last_sink_error()
    // for MONITOR STATUS, on top of the false return.
    Emit(LogSeverity::kWarn, "obs", "event_log_open_failed",
         {{"path", path}, {"error", failure}});
    if (error != nullptr) *error = failure;
    return false;
  }
  return true;
}

void EventLog::CloseSink() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!sink_.is_open()) return;
  // Explicit flush first: ofstream::close flushes too, but silently —
  // checking here is what lets a failed final flush be counted.
  sink_.flush();
  if (!sink_.good()) {
    write_errors_.fetch_add(1, std::memory_order_relaxed);
    WriteErrorsCounter()->Increment();
    last_sink_error_ = "final flush on close failed";
  }
  sink_.close();
}

bool EventLog::HasSink() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sink_.is_open();
}

std::string EventLog::last_sink_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_sink_error_;
}

EventLog& EventLog::Global() {
  static EventLog* global = new EventLog();
  return *global;
}

}  // namespace obs
}  // namespace expdb
