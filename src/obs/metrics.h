// Unified metrics layer (docs/OBSERVABILITY.md): named counters, gauges,
// and fixed-bucket histograms collected in a process-wide MetricsRegistry.
//
// Design:
//  * Counter / Gauge / Histogram are standalone objects with a lock-free
//    fast path (relaxed atomics). Each may be *parented* onto another
//    metric of the same kind: updates propagate up the parent chain, so a
//    component can own instance-local metrics (feeding its legacy stats
//    struct) while a process-wide aggregate accumulates in the registry.
//    This keeps exactly one write path — the old ad-hoc stats structs
//    (ViewStats, ExpirationStats, NetworkStats) are now thin read views
//    over these objects.
//  * MetricsRegistry::Global() pre-registers the standard `expdb_*`
//    metric names for every subsystem so Snapshot() is complete even
//    before a subsystem has been exercised.
//  * Snapshot() produces a stable, copyable description; PrometheusText()
//    and JsonText() render it for scraping.
//
// Naming convention: expdb_<subsystem>_<name>[_total] with subsystems
// eval, expiration, view, replica, sql (see docs/OBSERVABILITY.md).

#ifndef EXPDB_OBS_METRICS_H_
#define EXPDB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace expdb {
namespace obs {

/// \brief Escapes a string for embedding in a JSON string literal
/// (backslash, quote, and control characters). Shared by the metrics
/// JSON exporter, the Chrome trace export, and the event log.
std::string JsonEscape(std::string_view s);

/// \brief Escapes a Prometheus HELP text (backslash and newline, per the
/// text exposition format).
std::string PrometheusEscapeHelp(std::string_view s);

/// \brief Escapes a Prometheus label value (backslash, quote, newline).
std::string PrometheusEscapeLabel(std::string_view s);

/// \brief A monotonically increasing event count. Thread-safe; the
/// increment path is a single relaxed atomic add per chain link.
class Counter {
 public:
  Counter() = default;
  explicit Counter(Counter* parent) : parent_(parent) {}

  // Copyable so that stats-bearing components stay copyable: the copy
  // snapshots the value and shares the parent. The copied count is NOT
  // re-added to the parent (the events were already aggregated once).
  Counter(const Counter& other)
      : value_(other.value()), parent_(other.parent_) {}
  Counter& operator=(const Counter& other) {
    value_.store(other.value(), std::memory_order_relaxed);
    parent_ = other.parent_;
    return *this;
  }

  /// \brief Re-parents this counter; updates after this call propagate to
  /// `parent` (and its ancestors). Not thread-safe w.r.t. Increment.
  void SetParent(Counter* parent) { parent_ = parent; }

  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
    if (parent_ != nullptr) parent_->Increment(n);
  }

  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  /// \brief Zeroes this counter only — ancestors keep their accumulated
  /// totals (process-wide counters are cumulative, Prometheus-style).
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
  Counter* parent_ = nullptr;
};

/// \brief A value that can go up and down. Updates through Add propagate
/// deltas to the parent, so a parent gauge holds the sum over children;
/// construction, copies, and destruction keep that invariant (a dying
/// child removes its contribution from the parent).
class Gauge {
 public:
  Gauge() = default;
  explicit Gauge(Gauge* parent) : parent_(parent) {}

  Gauge(const Gauge& other) : value_(other.value()), parent_(other.parent_) {
    if (parent_ != nullptr) parent_->Add(value());
  }
  Gauge& operator=(const Gauge& other) {
    if (this == &other) return *this;
    if (parent_ != nullptr) parent_->Add(-value());
    value_.store(other.value(), std::memory_order_relaxed);
    parent_ = other.parent_;
    if (parent_ != nullptr) parent_->Add(value());
    return *this;
  }

  ~Gauge() {
    if (parent_ != nullptr) parent_->Add(-value());
  }

  /// \brief Re-parents, moving the current contribution from the old
  /// parent (if any) to the new one. Not thread-safe w.r.t. Add/Set.
  void SetParent(Gauge* parent) {
    const int64_t v = value();
    if (parent_ != nullptr) parent_->Add(-v);
    parent_ = parent;
    if (parent_ != nullptr) parent_->Add(v);
  }

  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
    if (parent_ != nullptr) parent_->Add(delta);
  }

  /// \brief Sets the local value, forwarding the *delta* to the parent
  /// (the parent remains the sum over its children).
  void Set(int64_t v) {
    const int64_t old = value_.exchange(v, std::memory_order_relaxed);
    if (parent_ != nullptr) parent_->Add(v - old);
  }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
  Gauge* parent_ = nullptr;
};

/// \brief A fixed-bucket histogram over int64 samples (latencies in
/// nanoseconds, batch sizes, ...). Bucket i counts samples <= bounds[i];
/// one implicit overflow bucket counts the rest. Thread-safe: recording
/// is a handful of relaxed atomic ops plus two CAS loops for min/max.
class Histogram {
 public:
  /// \brief Exponential bucket upper bounds: start, start*factor, ...
  static std::vector<int64_t> ExponentialBounds(int64_t start, double factor,
                                                size_t count);
  /// \brief Default bounds for nanosecond latencies: 256ns .. ~4.6s, x4.
  static std::vector<int64_t> DefaultLatencyBounds();

  explicit Histogram(std::vector<int64_t> bounds = DefaultLatencyBounds(),
                     Histogram* parent = nullptr);

  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram& other);

  /// \brief Re-parents. The parent must share this histogram's bounds for
  /// its percentiles to stay meaningful (counts aggregate regardless).
  void SetParent(Histogram* parent) { parent_ = parent; }

  void Record(int64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded sample; 0 when empty.
  int64_t min() const;
  int64_t max() const;
  double mean() const;

  /// \brief Estimated p-th percentile (p in [0, 100]) by linear
  /// interpolation inside the bucket holding the rank, clamped to the
  /// observed [min, max]. Returns 0.0 when empty.
  double Percentile(double p) const;

  const std::vector<int64_t>& bounds() const { return bounds_; }
  /// \brief Per-bucket counts; size() == bounds().size() + 1 (overflow).
  std::vector<uint64_t> BucketCounts() const;

  void Reset();

 private:
  std::vector<int64_t> bounds_;  // sorted, strictly increasing
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{0};
  std::atomic<int64_t> max_{0};
  Histogram* parent_ = nullptr;
};

/// \brief A copyable snapshot of one metric.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  std::string help;
  Kind kind = Kind::kCounter;

  /// Counter/gauge value (histograms: the mean).
  double value = 0.0;

  // Histogram details.
  uint64_t count = 0;
  int64_t sum = 0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  std::vector<int64_t> bucket_bounds;
  std::vector<uint64_t> bucket_counts;

  std::string_view KindName() const;
};

/// \brief A named collection of metrics. Registration is mutex-guarded;
/// returned pointers are stable for the registry's lifetime, so hot paths
/// look a metric up once and then touch only atomics.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// \brief Finds or creates the named metric. The returned pointer stays
  /// valid as long as the registry lives. `help` is recorded on first
  /// creation only.
  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  Histogram* GetHistogram(
      const std::string& name, const std::string& help = "",
      std::vector<int64_t> bounds = Histogram::DefaultLatencyBounds());

  /// \brief All metrics, sorted by name.
  std::vector<MetricSnapshot> Snapshot() const;

  /// \brief Prometheus text exposition format.
  std::string PrometheusText() const;

  /// \brief JSON array of metric objects.
  std::string JsonText() const;

  size_t MetricCount() const;

  /// \brief Zeroes every metric (registrations survive). Test/bench aid.
  void ResetAll();

  /// \brief The process-wide registry, pre-populated with the standard
  /// expdb_* metric names of every subsystem.
  static MetricsRegistry& Global();

 private:
  struct Entry {
    MetricSnapshot::Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;
};

/// \brief Registers the standard expdb metric set (all five subsystems)
/// on `registry`. Idempotent. Global() calls this once automatically.
void RegisterStandardMetrics(MetricsRegistry& registry);

}  // namespace obs
}  // namespace expdb

#endif  // EXPDB_OBS_METRICS_H_
