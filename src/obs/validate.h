// Exporter conformance checks, shared by the unit tests and the CI
// artifact tool (examples/trace_artifacts.cpp):
//  * ValidateJson       — a strict RFC 8259 recursive-descent parser that
//    accepts exactly one JSON value (used to round-trip the JSON metrics
//    exporter and the Chrome trace export).
//  * ValidateJsonLines  — every non-empty line is one JSON value (the
//    event log's JSONL sink).
//  * ValidatePrometheusText — structural checks on the text exposition
//    format: # TYPE for every sample family, metric-name and label
//    syntax, escaped HELP text, histogram bucket monotonicity, and
//    _bucket/_sum/_count consistency.
//
// All functions return true on success; on failure they return false and
// describe the first violation in *error (when non-null).

#ifndef EXPDB_OBS_VALIDATE_H_
#define EXPDB_OBS_VALIDATE_H_

#include <string>
#include <string_view>

namespace expdb {
namespace obs {

bool ValidateJson(std::string_view text, std::string* error = nullptr);

bool ValidateJsonLines(std::string_view text, std::string* error = nullptr);

bool ValidatePrometheusText(std::string_view text,
                            std::string* error = nullptr);

}  // namespace obs
}  // namespace expdb

#endif  // EXPDB_OBS_VALIDATE_H_
