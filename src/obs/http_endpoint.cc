#include "obs/http_endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string_view>

namespace expdb {
namespace obs {

namespace {

// Bounds chosen for a scrape endpoint: request lines are short, and a
// client that sends more than this is not a scraper.
constexpr size_t kMaxRequestBytes = 8192;
// The accept loop polls with this timeout so Stop() is noticed promptly
// without any cross-thread socket shutdown dance.
constexpr int kPollTimeoutMs = 200;

std::string StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Status";
  }
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string PercentDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size() && HexDigit(s[i + 1]) >= 0 &&
        HexDigit(s[i + 2]) >= 0) {
      out.push_back(static_cast<char>(HexDigit(s[i + 1]) * 16 +
                                      HexDigit(s[i + 2])));
      i += 2;
    } else if (s[i] == '+') {
      out.push_back(' ');
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

/// Writes the whole buffer, tolerating short writes and EINTR.
bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

std::optional<std::string> QueryParam(const std::string& query,
                                      const std::string& key) {
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string_view pair =
        std::string_view(query).substr(pos, amp - pos);
    const size_t eq = pair.find('=');
    const std::string_view k = eq == std::string_view::npos
                                   ? pair
                                   : pair.substr(0, eq);
    if (PercentDecode(k) == key) {
      return eq == std::string_view::npos ? std::string()
                                          : PercentDecode(pair.substr(eq + 1));
    }
    pos = amp + 1;
  }
  return std::nullopt;
}

HttpEndpoint::HttpEndpoint(Handler handler) : handler_(std::move(handler)) {
  MetricsRegistry& r = MetricsRegistry::Global();
  requests_.SetParent(r.GetCounter(
      "expdb_http_requests_total", "HTTP observability requests served"));
  errors_.SetParent(r.GetCounter(
      "expdb_http_errors_total",
      "HTTP observability requests rejected (malformed, oversized, or "
      "non-GET)"));
}

HttpEndpoint::~HttpEndpoint() { Stop(); }

int HttpEndpoint::Start(int port, std::string* error) {
  std::lock_guard<std::mutex> guard(mu_);
  if (thread_running_) return port_;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = "socket(): " + std::string(strerror(errno));
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "bind(127.0.0.1:" + std::to_string(port) +
               "): " + std::string(strerror(errno));
    }
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 16) != 0) {
    if (error != nullptr) *error = "listen(): " + std::string(strerror(errno));
    ::close(fd);
    return -1;
  }
  // Recover the kernel-assigned port when 0 was requested.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    if (error != nullptr) {
      *error = "getsockname(): " + std::string(strerror(errno));
    }
    ::close(fd);
    return -1;
  }
  port_ = ntohs(bound.sin_port);
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread(&HttpEndpoint::Loop, this, fd);
  thread_running_ = true;
  return port_;
}

void HttpEndpoint::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (!thread_running_) return;
    stop_.store(true, std::memory_order_relaxed);
    thread_running_ = false;
    port_ = 0;
    to_join = std::move(thread_);
  }
  if (to_join.joinable()) to_join.join();
}

bool HttpEndpoint::running() const {
  std::lock_guard<std::mutex> guard(mu_);
  return thread_running_;
}

int HttpEndpoint::port() const {
  std::lock_guard<std::mutex> guard(mu_);
  return port_;
}

void HttpEndpoint::Loop(int listen_fd) {
  // The listening fd is owned by this thread: opened by Start, closed
  // here on the way out — no cross-thread close races.
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollTimeoutMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // listener broken; nothing sensible to do but exit
    }
    if (ready == 0) continue;  // timeout: re-check stop_
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) continue;
    ServeConnection(conn);
    ::close(conn);
  }
  ::close(listen_fd);
}

void HttpEndpoint::ServeConnection(int fd) {
  // Read until the end of the header block (we never accept bodies).
  std::string request;
  char buf[2048];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    if (request.size() > kMaxRequestBytes) {
      errors_.Increment();
      WriteAll(fd, "HTTP/1.1 400 Bad Request\r\nConnection: close\r\n"
                   "Content-Length: 0\r\n\r\n");
      return;
    }
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, kPollTimeoutMs * 5) <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }

  // Parse "METHOD /path?query HTTP/1.1".
  const size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos
                         ? std::string::npos
                         : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    errors_.Increment();
    WriteAll(fd, "HTTP/1.1 400 Bad Request\r\nConnection: close\r\n"
                 "Content-Length: 0\r\n\r\n");
    return;
  }
  HttpRequest req;
  req.method = line.substr(0, sp1);
  for (char& c : req.method) c = static_cast<char>(toupper(c));
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t qmark = target.find('?');
  if (qmark != std::string::npos) {
    req.query = target.substr(qmark + 1);
    target.resize(qmark);
  }
  req.path = PercentDecode(target);

  requests_.Increment();
  HttpResponse resp;
  if (req.method != "GET") {
    errors_.Increment();
    resp.status = 405;
    resp.content_type = "text/plain; charset=utf-8";
    resp.body = "only GET is supported\n";
  } else {
    resp = handler_(req);
  }

  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    StatusText(resp.status) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += resp.body;
  WriteAll(fd, out);
}

std::optional<HttpResponse> HttpGet(const std::string& host, int port,
                                    const std::string& target,
                                    std::string* error, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = "socket(): " + std::string(strerror(errno));
    return std::nullopt;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad host address '" + host + "'";
    ::close(fd);
    return std::nullopt;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "connect(" + host + ":" + std::to_string(port) +
               "): " + std::string(strerror(errno));
    }
    ::close(fd);
    return std::nullopt;
  }
  const std::string request = "GET " + target + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!WriteAll(fd, request)) {
    if (error != nullptr) *error = "send(): " + std::string(strerror(errno));
    ::close(fd);
    return std::nullopt;
  }

  std::string raw;
  char buf[4096];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) {
      if (error != nullptr) *error = "timed out waiting for response";
      ::close(fd);
      return std::nullopt;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = "recv(): " + std::string(strerror(errno));
      ::close(fd);
      return std::nullopt;
    }
    if (n == 0) break;  // server closed: response complete
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos || raw.rfind("HTTP/", 0) != 0) {
    if (error != nullptr) *error = "malformed response";
    return std::nullopt;
  }
  HttpResponse resp;
  const size_t sp = raw.find(' ');
  if (sp != std::string::npos && sp + 4 <= raw.size()) {
    resp.status = std::atoi(raw.c_str() + sp + 1);
  }
  // Recover Content-Type for callers that verify it.
  const std::string headers = raw.substr(0, header_end);
  size_t ct = headers.find("Content-Type:");
  if (ct == std::string::npos) ct = headers.find("content-type:");
  if (ct != std::string::npos) {
    size_t ct_end = headers.find("\r\n", ct);
    if (ct_end == std::string::npos) ct_end = headers.size();
    std::string value = headers.substr(ct + 13, ct_end - ct - 13);
    const size_t first = value.find_first_not_of(' ');
    resp.content_type = first == std::string::npos ? "" : value.substr(first);
  }
  resp.body = raw.substr(header_end + 4);
  return resp;
}

}  // namespace obs
}  // namespace expdb
