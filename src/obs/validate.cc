#include "obs/validate.h"

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <set>
#include <vector>

namespace expdb {
namespace obs {

namespace {

// --- JSON ----------------------------------------------------------------

/// Strict RFC 8259 parser: validates structure without building a tree.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Check(std::string* error) {
    SkipWs();
    if (!Value()) return Fail(error);
    SkipWs();
    if (pos_ != text_.size()) {
      error_ = "trailing characters after JSON value";
      return Fail(error);
    }
    return true;
  }

 private:
  bool Fail(std::string* error) {
    if (error_.empty()) return true;
    if (error != nullptr) {
      *error = error_ + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Eat(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Error(const char* what) {
    if (error_.empty()) error_ = what;
    return false;
  }

  bool Value() {
    switch (Peek()) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return Error("invalid literal");
    }
    pos_ += lit.size();
    return true;
  }

  bool Object() {
    if (!Eat('{')) return Error("expected '{'");
    SkipWs();
    if (Eat('}')) return true;
    for (;;) {
      SkipWs();
      if (!String()) return Error("expected object key");
      SkipWs();
      if (!Eat(':')) return Error("expected ':'");
      SkipWs();
      if (!Value()) return Error("invalid object value");
      SkipWs();
      if (Eat(',')) continue;
      if (Eat('}')) return true;
      return Error("expected ',' or '}'");
    }
  }

  bool Array() {
    if (!Eat('[')) return Error("expected '['");
    SkipWs();
    if (Eat(']')) return true;
    for (;;) {
      SkipWs();
      if (!Value()) return Error("invalid array element");
      SkipWs();
      if (Eat(',')) continue;
      if (Eat(']')) return true;
      return Error("expected ',' or ']'");
    }
  }

  bool String() {
    if (!Eat('"')) return Error("expected '\"'");
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return Error("unescaped control character in string");
      if (c == '\\') {
        ++pos_;
        const char e = Peek();
        if (e == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(Peek()))) {
              return Error("invalid \\u escape");
            }
            ++pos_;
          }
        } else if (e == '"' || e == '\\' || e == '/' || e == 'b' ||
                   e == 'f' || e == 'n' || e == 'r' || e == 't') {
          ++pos_;
        } else {
          return Error("invalid escape character");
        }
      } else {
        ++pos_;
      }
    }
    return Error("unterminated string");
  }

  bool Number() {
    const size_t start = pos_;
    Eat('-');
    if (Peek() == '0') {
      ++pos_;
    } else if (std::isdigit(static_cast<unsigned char>(Peek()))) {
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    } else {
      return Error("invalid number");
    }
    if (Eat('.')) {
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("invalid number fraction");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("invalid number exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

// --- Prometheus ----------------------------------------------------------

bool IsValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool ok = std::isalpha(static_cast<unsigned char>(c)) ||
                    c == '_' || c == ':' ||
                    (i > 0 && std::isdigit(static_cast<unsigned char>(c)));
    if (!ok) return false;
  }
  return true;
}

bool IsValidLabelName(std::string_view name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool ok = std::isalpha(static_cast<unsigned char>(c)) ||
                    c == '_' ||
                    (i > 0 && std::isdigit(static_cast<unsigned char>(c)));
    if (!ok) return false;
  }
  return true;
}

bool ParseSampleValue(std::string_view s, double* out) {
  if (s == "+Inf" || s == "-Inf" || s == "NaN") {
    *out = s == "-Inf" ? -1e308 : 1e308;
    return true;
  }
  if (s.empty()) return false;
  char* end = nullptr;
  const std::string copy(s);
  *out = std::strtod(copy.c_str(), &end);
  return end != nullptr && *end == '\0';
}

std::vector<std::string_view> SplitLines(std::string_view text) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      if (start < text.size()) lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// One parsed sample line: name, optional labels, value.
struct Sample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;
};

bool ParseSampleLine(std::string_view line, Sample* out, std::string* why) {
  size_t i = 0;
  const size_t name_end = line.find_first_of("{ ", i);
  if (name_end == std::string_view::npos) {
    *why = "sample line has no value";
    return false;
  }
  out->name = std::string(line.substr(0, name_end));
  if (!IsValidMetricName(out->name)) {
    *why = "invalid metric name '" + out->name + "'";
    return false;
  }
  i = name_end;
  if (line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      const size_t eq = line.find('=', i);
      if (eq == std::string_view::npos) {
        *why = "malformed label pair";
        return false;
      }
      const std::string label(line.substr(i, eq - i));
      if (!IsValidLabelName(label)) {
        *why = "invalid label name '" + label + "'";
        return false;
      }
      i = eq + 1;
      if (i >= line.size() || line[i] != '"') {
        *why = "label value must be quoted";
        return false;
      }
      ++i;
      std::string value;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\') {
          ++i;
          if (i >= line.size() ||
              (line[i] != '\\' && line[i] != '"' && line[i] != 'n')) {
            *why = "invalid escape in label value";
            return false;
          }
        }
        value += line[i];
        ++i;
      }
      if (i >= line.size()) {
        *why = "unterminated label value";
        return false;
      }
      ++i;  // closing quote
      out->labels.emplace_back(label, std::move(value));
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size() || line[i] != '}') {
      *why = "unterminated label set";
      return false;
    }
    ++i;
  }
  if (i >= line.size() || line[i] != ' ') {
    *why = "expected space before sample value";
    return false;
  }
  ++i;
  if (!ParseSampleValue(line.substr(i), &out->value)) {
    *why = "unparsable sample value '" + std::string(line.substr(i)) + "'";
    return false;
  }
  return true;
}

/// Strips a histogram-series suffix to recover the family name.
std::string FamilyName(const std::string& sample_name) {
  for (std::string_view suffix : {"_bucket", "_sum", "_count"}) {
    if (sample_name.size() > suffix.size() &&
        sample_name.compare(sample_name.size() - suffix.size(),
                            suffix.size(), suffix) == 0) {
      return sample_name.substr(0, sample_name.size() - suffix.size());
    }
  }
  return sample_name;
}

}  // namespace

bool ValidateJson(std::string_view text, std::string* error) {
  return JsonChecker(text).Check(error);
}

bool ValidateJsonLines(std::string_view text, std::string* error) {
  size_t line_no = 0;
  for (std::string_view line : SplitLines(text)) {
    ++line_no;
    if (line.empty()) continue;
    std::string inner;
    if (!JsonChecker(line).Check(&inner)) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": " + inner;
      }
      return false;
    }
  }
  return true;
}

bool ValidatePrometheusText(std::string_view text, std::string* error) {
  auto fail = [error](size_t line_no, const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + why;
    }
    return false;
  };

  std::map<std::string, std::string> types;  // family -> declared type
  struct HistogramSeries {
    std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
    bool have_sum = false;
    bool have_count = false;
    double count = 0.0;
    size_t first_line = 0;
  };
  std::map<std::string, HistogramSeries> histograms;

  size_t line_no = 0;
  for (std::string_view line : SplitLines(text)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# HELP <name> <text>" or "# TYPE <name> <type>"; other comments
      // are allowed and skipped.
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string_view rest = line.substr(7);
        const size_t sp = rest.find(' ');
        if (sp == std::string_view::npos) {
          return fail(line_no, "malformed TYPE line");
        }
        const std::string name(rest.substr(0, sp));
        const std::string type(rest.substr(sp + 1));
        if (!IsValidMetricName(name)) {
          return fail(line_no, "invalid metric name in TYPE line");
        }
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return fail(line_no, "unknown metric type '" + type + "'");
        }
        if (types.count(name) != 0) {
          return fail(line_no, "duplicate TYPE for '" + name + "'");
        }
        types[name] = type;
      } else if (line.rfind("# HELP ", 0) == 0) {
        const std::string_view rest = line.substr(7);
        const size_t sp = rest.find(' ');
        const std::string name(
            sp == std::string_view::npos ? rest : rest.substr(0, sp));
        if (!IsValidMetricName(name)) {
          return fail(line_no, "invalid metric name in HELP line");
        }
        // Escaping: a raw backslash must introduce \\ or \n.
        const std::string_view help =
            sp == std::string_view::npos ? std::string_view() : rest.substr(sp + 1);
        for (size_t i = 0; i < help.size(); ++i) {
          if (help[i] == '\\') {
            if (i + 1 >= help.size() ||
                (help[i + 1] != '\\' && help[i + 1] != 'n')) {
              return fail(line_no, "unescaped backslash in HELP text");
            }
            ++i;
          }
        }
      }
      continue;
    }

    Sample sample;
    std::string why;
    if (!ParseSampleLine(line, &sample, &why)) return fail(line_no, why);
    const std::string family = FamilyName(sample.name);
    auto type_it = types.find(family);
    if (type_it == types.end()) {
      // _sum/_count/_bucket only belong to a histogram family; a plain
      // sample must carry its own TYPE.
      type_it = types.find(sample.name);
      if (type_it == types.end()) {
        return fail(line_no, "sample '" + sample.name +
                                 "' has no preceding # TYPE line");
      }
    }

    if (type_it->second == "histogram" && family != sample.name) {
      HistogramSeries& h = histograms[family];
      if (h.first_line == 0) h.first_line = line_no;
      if (sample.name == family + "_bucket") {
        std::string le;
        for (const auto& [k, v] : sample.labels) {
          if (k == "le") le = v;
        }
        if (le.empty()) {
          return fail(line_no, "histogram bucket without le label");
        }
        double bound = 0.0;
        if (!ParseSampleValue(le, &bound)) {
          return fail(line_no, "unparsable le value '" + le + "'");
        }
        h.buckets.emplace_back(bound, sample.value);
      } else if (sample.name == family + "_sum") {
        h.have_sum = true;
      } else if (sample.name == family + "_count") {
        h.have_count = true;
        h.count = sample.value;
      }
    }
  }

  for (const auto& [family, h] : histograms) {
    if (h.buckets.empty()) {
      return fail(h.first_line, "histogram '" + family + "' has no buckets");
    }
    for (size_t i = 1; i < h.buckets.size(); ++i) {
      if (h.buckets[i].first < h.buckets[i - 1].first) {
        return fail(h.first_line,
                    "histogram '" + family + "' le bounds not increasing");
      }
      if (h.buckets[i].second < h.buckets[i - 1].second) {
        return fail(h.first_line, "histogram '" + family +
                                      "' bucket counts not cumulative");
      }
    }
    if (h.buckets.back().first < 1e307) {
      return fail(h.first_line,
                  "histogram '" + family + "' missing +Inf bucket");
    }
    if (!h.have_sum || !h.have_count) {
      return fail(h.first_line,
                  "histogram '" + family + "' missing _sum or _count");
    }
    if (h.buckets.back().second != h.count) {
      return fail(h.first_line, "histogram '" + family +
                                    "' +Inf bucket != _count");
    }
  }
  return true;
}

}  // namespace obs
}  // namespace expdb
