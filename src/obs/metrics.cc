#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace expdb {
namespace obs {

// --- Escaping ------------------------------------------------------------

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string PrometheusEscapeHelp(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string PrometheusEscapeLabel(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// --- Histogram -----------------------------------------------------------

std::vector<int64_t> Histogram::ExponentialBounds(int64_t start,
                                                  double factor,
                                                  size_t count) {
  std::vector<int64_t> bounds;
  bounds.reserve(count);
  double v = static_cast<double>(start < 1 ? 1 : start);
  int64_t prev = 0;
  for (size_t i = 0; i < count; ++i) {
    int64_t b = static_cast<int64_t>(v);
    if (b <= prev) b = prev + 1;  // keep strictly increasing
    bounds.push_back(b);
    prev = b;
    v *= factor;
  }
  return bounds;
}

std::vector<int64_t> Histogram::DefaultLatencyBounds() {
  // 256ns, 1µs, 4µs, ..., x4 for 13 buckets => top bound ~4.3s.
  return ExponentialBounds(256, 4.0, 13);
}

Histogram::Histogram(std::vector<int64_t> bounds, Histogram* parent)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      parent_(parent) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  if (buckets_.size() != bounds_.size() + 1) {
    // Dedup shrank the bounds; rebuild the bucket array to match.
    std::vector<std::atomic<uint64_t>> rebuilt(bounds_.size() + 1);
    buckets_.swap(rebuilt);
  }
}

Histogram::Histogram(const Histogram& other)
    : bounds_(other.bounds_),
      buckets_(other.bounds_.size() + 1),
      parent_(other.parent_) {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].store(other.buckets_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
  count_.store(other.count(), std::memory_order_relaxed);
  sum_.store(other.sum(), std::memory_order_relaxed);
  min_.store(other.min_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
  max_.store(other.max_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
}

Histogram& Histogram::operator=(const Histogram& other) {
  if (this == &other) return *this;
  Histogram copy(other);
  bounds_ = copy.bounds_;
  buckets_.swap(copy.buckets_);
  count_.store(copy.count(), std::memory_order_relaxed);
  sum_.store(copy.sum(), std::memory_order_relaxed);
  min_.store(copy.min_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
  max_.store(copy.max_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
  parent_ = copy.parent_;
  return *this;
}

void Histogram::Record(int64_t value) {
  const size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  const uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  if (n == 0) {
    // First sample initializes min/max; concurrent first samples race
    // benignly through the CAS loops below.
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  }
  int64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  if (parent_ != nullptr) parent_->Record(value);
}

int64_t Histogram::min() const {
  return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

int64_t Histogram::max() const {
  return count() == 0 ? 0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Percentile(double p) const {
  const std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // 1-based rank of the percentile sample.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(total)));
  rank = std::clamp<uint64_t>(rank, 1, total);

  const int64_t observed_min = min();
  const int64_t observed_max = max();
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (cumulative + counts[i] >= rank) {
      const double lo = static_cast<double>(i == 0 ? 0 : bounds_[i - 1]);
      const double hi = static_cast<double>(
          i < bounds_.size() ? bounds_[i] : observed_max);
      const double within =
          static_cast<double>(rank - cumulative) /
          static_cast<double>(counts[i]);
      const double v = lo + within * (hi - lo);
      return std::clamp(v, static_cast<double>(observed_min),
                        static_cast<double>(observed_max));
    }
    cumulative += counts[i];
  }
  return static_cast<double>(observed_max);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// --- MetricSnapshot ------------------------------------------------------

std::string_view MetricSnapshot::KindName() const {
  switch (kind) {
    case Kind::kCounter:
      return "counter";
    case Kind::kGauge:
      return "gauge";
    case Kind::kHistogram:
      return "histogram";
  }
  return "?";
}

// --- MetricsRegistry -----------------------------------------------------

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = MetricSnapshot::Kind::kCounter;
    entry.help = help;
    entry.counter = std::make_unique<Counter>();
    it = metrics_.emplace(name, std::move(entry)).first;
  }
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = MetricSnapshot::Kind::kGauge;
    entry.help = help;
    entry.gauge = std::make_unique<Gauge>();
    it = metrics_.emplace(name, std::move(entry)).first;
  }
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = MetricSnapshot::Kind::kHistogram;
    entry.help = help;
    entry.histogram = std::make_unique<Histogram>(std::move(bounds));
    it = metrics_.emplace(name, std::move(entry)).first;
  }
  return it->second.histogram.get();
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.help = entry.help;
    snap.kind = entry.kind;
    switch (entry.kind) {
      case MetricSnapshot::Kind::kCounter:
        if (entry.counter != nullptr) {
          snap.value = static_cast<double>(entry.counter->value());
        }
        break;
      case MetricSnapshot::Kind::kGauge:
        if (entry.gauge != nullptr) {
          snap.value = static_cast<double>(entry.gauge->value());
        }
        break;
      case MetricSnapshot::Kind::kHistogram:
        if (entry.histogram != nullptr) {
          const Histogram& h = *entry.histogram;
          snap.count = h.count();
          snap.sum = h.sum();
          snap.value = h.mean();
          snap.p50 = h.Percentile(50.0);
          snap.p95 = h.Percentile(95.0);
          snap.p99 = h.Percentile(99.0);
          snap.bucket_bounds = h.bounds();
          snap.bucket_counts = h.BucketCounts();
        }
        break;
    }
    out.push_back(std::move(snap));
  }
  return out;
}

namespace {

std::string FormatDouble(double v) {
  // Integral values print without a fractional part; everything else
  // keeps full precision (good enough for scraping and humans alike).
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::PrometheusText() const {
  std::string out;
  for (const MetricSnapshot& m : Snapshot()) {
    if (!m.help.empty()) {
      out += "# HELP " + m.name + " " + PrometheusEscapeHelp(m.help) + "\n";
    }
    out += "# TYPE " + m.name + " " + std::string(m.KindName()) + "\n";
    if (m.kind == MetricSnapshot::Kind::kHistogram) {
      uint64_t cumulative = 0;
      for (size_t i = 0; i < m.bucket_counts.size(); ++i) {
        cumulative += m.bucket_counts[i];
        const std::string le =
            i < m.bucket_bounds.size()
                ? std::to_string(m.bucket_bounds[i])
                : std::string("+Inf");
        out += m.name + "_bucket{le=\"" + PrometheusEscapeLabel(le) + "\"} " +
               std::to_string(cumulative) + "\n";
      }
      out += m.name + "_sum " + std::to_string(m.sum) + "\n";
      out += m.name + "_count " + std::to_string(m.count) + "\n";
    } else {
      out += m.name + " " + FormatDouble(m.value) + "\n";
    }
  }
  return out;
}

std::string MetricsRegistry::JsonText() const {
  std::string out = "[";
  bool first = true;
  for (const MetricSnapshot& m : Snapshot()) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(m.name) + "\",\"type\":\"" +
           std::string(m.KindName()) + "\"";
    if (m.kind == MetricSnapshot::Kind::kHistogram) {
      out += ",\"count\":" + std::to_string(m.count) +
             ",\"sum\":" + std::to_string(m.sum) +
             ",\"mean\":" + FormatDouble(m.value) +
             ",\"p50\":" + FormatDouble(m.p50) +
             ",\"p95\":" + FormatDouble(m.p95) +
             ",\"p99\":" + FormatDouble(m.p99);
    } else {
      out += ",\"value\":" + FormatDouble(m.value);
    }
    out += "}";
  }
  out += "]";
  return out;
}

size_t MetricsRegistry::MetricCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : metrics_) {
    if (entry.counter != nullptr) entry.counter->Reset();
    if (entry.gauge != nullptr) entry.gauge->Reset();
    if (entry.histogram != nullptr) entry.histogram->Reset();
  }
}

void RegisterStandardMetrics(MetricsRegistry& r) {
  // core/eval ------------------------------------------------------------
  r.GetCounter("expdb_eval_evaluations_total",
               "Root-level expression evaluations");
  r.GetCounter("expdb_eval_operators_total",
               "Operator nodes evaluated (all kinds)");
  r.GetCounter("expdb_eval_tuples_out_total",
               "Tuples produced by operator nodes");
  r.GetHistogram("expdb_eval_latency_ns",
                 "Root evaluation wall time (ns)");
  r.GetCounter("expdb_eval_parallel_loops_total",
               "Operator scans executed as parallel morsel loops");
  r.GetCounter("expdb_eval_parallel_morsels_total",
               "Morsels processed by parallel operator scans");
  r.GetCounter("expdb_eval_parallel_fallback_total",
               "Parallel-eligible scans run serially (below morsel cutoff)");
  r.GetHistogram("expdb_eval_parallel_morsel_latency_ns",
                 "Per-morsel wall time of parallel operator scans (ns)");
  // plan -----------------------------------------------------------------
  r.GetCounter("expdb_plan_plans_total",
               "Physical plans produced by the planner");
  r.GetCounter("expdb_plan_rewrite_passes_total",
               "Sec. 3.1 rewrite passes run during planning");
  r.GetCounter("expdb_plan_cache_hits_total",
               "Executions served from a cached physical plan");
  r.GetCounter("expdb_plan_pruned_subtrees_total",
               "Plan subtrees skipped because every base tuple expired");
  r.GetCounter("expdb_plan_cse_reuses_total",
               "Common-subtree results reused within one execution");
  r.GetHistogram("expdb_plan_latency_ns", "Planning wall time (ns)");
  r.GetCounter("expdb_result_cache_hits_total",
               "Statements served from the expiration-stamped result cache");
  r.GetCounter("expdb_result_cache_misses_total",
               "Result-cache lookups that fell through to execution");
  r.GetCounter("expdb_result_cache_patches_total",
               "Result-cache hits served after delta patching the entry");
  r.GetCounter("expdb_result_cache_evictions_total",
               "Result-cache entries evicted by the LRU byte budget");
  r.GetGauge("expdb_result_cache_bytes",
             "Estimated bytes held by result caches");
  r.GetHistogram("expdb_result_cache_lookup_latency_ns",
                 "Result-cache lookup latency (ns)");
  // expiration -----------------------------------------------------------
  r.GetCounter("expdb_expiration_inserted_total",
               "Tuples routed through ExpirationManager::Insert");
  r.GetCounter("expdb_expiration_removed_total",
               "Tuples physically removed on expiry");
  r.GetCounter("expdb_expiration_triggers_fired_total",
               "Expiration trigger invocations");
  r.GetCounter("expdb_expiration_index_pushes_total",
               "Eager expiration-index pushes");
  r.GetCounter("expdb_expiration_index_pops_total",
               "Eager expiration-index pops");
  r.GetCounter("expdb_expiration_stale_entries_total",
               "Index pops ignored (tuple gone or lifetime extended)");
  r.GetCounter("expdb_expiration_compactions_total",
               "Lazy compaction passes");
  r.GetCounter("expdb_expiration_calendar_overflow_total",
               "Calendar-queue schedules landing in the overflow map");
  r.GetGauge("expdb_expiration_queue_size",
             "Entries currently in the expiration index");
  r.GetHistogram("expdb_expiration_drain_latency_ns",
                 "Eager drain / lazy compaction wall time (ns)");
  // view -----------------------------------------------------------------
  r.GetCounter("expdb_view_recomputations_total",
               "Full view re-evaluations (excludes initial builds)");
  r.GetCounter("expdb_view_reads_total", "View reads served");
  r.GetCounter("expdb_view_reads_from_materialization_total",
               "View reads served without recomputation");
  r.GetCounter("expdb_view_reads_moved_backward_total",
               "Schrodinger reads served at an earlier valid time");
  r.GetCounter("expdb_view_reads_moved_forward_total",
               "Schrodinger reads served at a later valid time");
  r.GetCounter("expdb_view_patches_applied_total",
               "Theorem 3 helper tuples patched into views");
  r.GetCounter("expdb_view_tuples_recomputed_total",
               "Tuples produced by view recomputations");
  r.GetCounter("expdb_view_marked_stale_total",
               "Views marked stale by explicit base updates");
  r.GetCounter("expdb_view_notifications_total",
               "ViewManager::NotifyBaseChanged calls");
  r.GetGauge("expdb_view_count", "Live materialized views");
  r.GetGauge("expdb_view_pending_patches",
             "Helper entries not yet patched, across views");
  r.GetGauge("expdb_view_materialized_tuples",
             "Tuples stored in materializations, across views");
  r.GetHistogram("expdb_view_recompute_latency_ns",
                 "Staleness-repair (recompute) wall time (ns)");
  // replica --------------------------------------------------------------
  r.GetCounter("expdb_replica_messages_total",
               "Messages crossing the simulated network");
  r.GetCounter("expdb_replica_tuples_transferred_total",
               "Tuples crossing the simulated network");
  r.GetCounter("expdb_replica_fetches_total",
               "Server-side query fetches served");
  r.GetCounter("expdb_replica_helper_entries_total",
               "Theorem 3 helper entries shipped to clients");
  r.GetCounter("expdb_replica_refreshes_total",
               "Client-side subscription re-fetches");
  // engine ---------------------------------------------------------------
  r.GetCounter("expdb_engine_snapshots_total",
               "Read snapshots opened by the engine");
  r.GetCounter("expdb_engine_write_waits_total",
               "Write-lock acquisitions that had to block behind a holder");
  r.GetCounter("expdb_engine_maintenance_runs_total",
               "Background maintenance passes completed");
  r.GetCounter("expdb_engine_maintenance_removed_total",
               "Tuples physically removed by background maintenance");
  r.GetGauge("expdb_engine_sessions", "Live sessions attached to engines");
  r.GetHistogram("expdb_engine_maintenance_latency_ns",
                 "Background maintenance pass wall time (ns)");
  // sql ------------------------------------------------------------------
  r.GetCounter("expdb_sql_statements_total", "SQL statements executed");
  r.GetCounter("expdb_sql_errors_total", "SQL statements that failed");
  r.GetCounter("expdb_sql_slow_queries_total",
               "Statements exceeding the SET slow_query_ns threshold");
  r.GetHistogram("expdb_sql_statement_latency_ns",
                 "Statement execution wall time (ns)");
  // obs ------------------------------------------------------------------
  r.GetCounter("expdb_trace_spans_dropped_total",
               "Trace spans overwritten by ring overflow before export");
  r.GetCounter("expdb_log_events_total", "Structured log events emitted");
  r.GetCounter("expdb_log_events_dropped_total",
               "Structured log events overwritten by ring overflow");
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* global = [] {
    auto* r = new MetricsRegistry();
    RegisterStandardMetrics(*r);
    return r;
  }();
  return *global;
}

}  // namespace obs
}  // namespace expdb
