// Lightweight tracing (docs/OBSERVABILITY.md): ScopedSpan RAII timers
// feeding a bounded ring-buffer TraceRecorder with parent/child span ids.
//
// Spans carry a *trace id* grouping all work of one end-to-end request.
// The thread-local TraceContext (trace id + innermost live span id) links
// children to parents on one thread; TraceContextScope re-installs a
// captured context on another thread (ThreadPool::ParallelFor helpers) or
// on the far side of the simulated network (replica server), so a single
// query yields one connected span tree instead of orphan roots.
//
// Tracing is opt-in: when the recorder is disabled (the default) and no
// latency histogram is attached, ScopedSpan costs two branches — no clock
// reads — so instrumented hot paths stay within the <5% overhead budget
// measured by bench_obs_overhead.

#ifndef EXPDB_OBS_TRACE_H_
#define EXPDB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace expdb {
namespace obs {

/// \brief One completed span.
struct SpanRecord {
  uint64_t id = 0;         ///< unique per recorder, monotonically assigned
  uint64_t parent_id = 0;  ///< 0 = root span
  /// Groups every span of one end-to-end request. A root span starts a
  /// new trace with trace_id == its own id; descendants inherit it —
  /// across threads and the simulated network (see TraceContextScope).
  uint64_t trace_id = 0;
  std::string name;        ///< taxonomy: <subsystem>.<operation>[.<kind>]
  int64_t start_ns = 0;    ///< steady-clock, process-relative
  int64_t duration_ns = 0;
  /// Caller-chosen correlation key (0 = none). The plan executor tags
  /// operator spans with the PlanNode id so EXPLAIN ANALYZE can join
  /// spans back to the physical tree.
  uint64_t tag = 0;
  /// Small per-thread ordinal of the recording thread (the Chrome trace
  /// export's "tid"): morsel spans from different workers land on
  /// different tracks.
  uint32_t tid = 0;
};

/// \brief The ambient trace position of the calling thread: which trace
/// it is contributing to and which span is innermost. Copyable by design —
/// capture it before handing work to another thread.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool active() const { return trace_id != 0; }
};

/// \brief The calling thread's current context ({0, 0} when no traced
/// span is live here).
TraceContext CurrentTraceContext();

/// \brief RAII: installs `ctx` as the calling thread's context and
/// restores the previous one on destruction. Used by ParallelFor helper
/// tasks and the replica server so their spans become children of the
/// originating span instead of orphan roots.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext ctx);
  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
};

/// \brief Small dense ordinal of the calling thread (1-based, assigned on
/// first use). Stamped on SpanRecord::tid.
uint32_t CurrentThreadOrdinal();

/// \brief A bounded ring buffer of completed spans. Thread-safe. When
/// full, the oldest spans are overwritten — tracing never blocks or grows
/// unboundedly; each overwrite counts as a *dropped* span (`dropped()`
/// and `expdb_trace_spans_dropped_total`) so the loss is visible.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = 4096);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  size_t capacity() const { return capacity_; }

  /// \brief Assigns the next span id (never 0).
  uint64_t NextId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  void Record(SpanRecord record);

  /// \brief Spans currently retained, oldest first.
  std::vector<SpanRecord> Snapshot() const;

  /// \brief Total spans ever recorded (including overwritten ones).
  uint64_t total_recorded() const {
    return total_.load(std::memory_order_relaxed);
  }

  /// \brief Spans lost to ring overflow (recorded, then overwritten
  /// before any Snapshot could have exported them).
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  void Clear();

  /// \brief The process-wide recorder (disabled until enabled).
  static TraceRecorder& Global();

 private:
  const size_t capacity_;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;  // capacity_ slots once warmed up
  size_t write_pos_ = 0;
};

/// \brief Monotonic nanosecond clock (steady, process-relative).
int64_t SteadyNowNs();

/// \brief RAII span: times its scope, records into `recorder` when
/// enabled (linking to the enclosing span on this thread and inheriting
/// its trace id — or starting a new trace when there is none), and
/// optionally feeds the measured duration into a latency histogram.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, Histogram* latency = nullptr,
                      TraceRecorder* recorder = &TraceRecorder::Global());
  /// \brief Like above but stamps the recorded span with `tag` (e.g. a
  /// plan-node id) for later correlation.
  ScopedSpan(const char* name, uint64_t tag, Histogram* latency,
             TraceRecorder* recorder = &TraceRecorder::Global());
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// \brief This span's id (0 when tracing is disabled).
  uint64_t id() const { return id_; }

  /// \brief The trace this span belongs to (0 when tracing is disabled).
  uint64_t trace_id() const { return trace_id_; }

  /// \brief The measured duration so far (ns since construction), or 0
  /// when the span is untimed. Used by the executor to feed per-node
  /// profiles without a second clock read.
  int64_t ElapsedNs() const { return timed_ ? SteadyNowNs() - start_ns_ : 0; }

 private:
  const char* name_;
  Histogram* latency_;
  TraceRecorder* recorder_;
  uint64_t tag_ = 0;
  uint64_t id_ = 0;
  uint64_t trace_id_ = 0;
  TraceContext saved_{};  ///< context to restore on destruction
  int64_t start_ns_ = 0;
  bool timed_ = false;
};

/// \brief Renders spans as Chrome trace-event JSON (the `traceEvents`
/// array of complete "X" events, timestamps/durations in microseconds)
/// — loadable in Perfetto / chrome://tracing. Span, parent, trace id,
/// and tag ride along in each event's `args`.
std::string ChromeTraceJson(const std::vector<SpanRecord>& spans);

}  // namespace obs
}  // namespace expdb

#endif  // EXPDB_OBS_TRACE_H_
