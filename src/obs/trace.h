// Lightweight tracing (docs/OBSERVABILITY.md): ScopedSpan RAII timers
// feeding a bounded ring-buffer TraceRecorder with parent/child span ids.
//
// Tracing is opt-in: when the recorder is disabled (the default) and no
// latency histogram is attached, ScopedSpan costs two branches — no clock
// reads — so instrumented hot paths stay within the <5% overhead budget
// measured by bench_obs_overhead.

#ifndef EXPDB_OBS_TRACE_H_
#define EXPDB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace expdb {
namespace obs {

/// \brief One completed span.
struct SpanRecord {
  uint64_t id = 0;         ///< unique per recorder, monotonically assigned
  uint64_t parent_id = 0;  ///< 0 = root span
  std::string name;        ///< taxonomy: <subsystem>.<operation>[.<kind>]
  int64_t start_ns = 0;    ///< steady-clock, process-relative
  int64_t duration_ns = 0;
  /// Caller-chosen correlation key (0 = none). The plan executor tags
  /// operator spans with the PlanNode id so EXPLAIN ANALYZE can join
  /// spans back to the physical tree.
  uint64_t tag = 0;
};

/// \brief A bounded ring buffer of completed spans. Thread-safe. When
/// full, the oldest spans are overwritten — tracing never blocks or grows
/// unboundedly.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = 4096);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  size_t capacity() const { return capacity_; }

  /// \brief Assigns the next span id (never 0).
  uint64_t NextId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  void Record(SpanRecord record);

  /// \brief Spans currently retained, oldest first.
  std::vector<SpanRecord> Snapshot() const;

  /// \brief Total spans ever recorded (including overwritten ones).
  uint64_t total_recorded() const {
    return total_.load(std::memory_order_relaxed);
  }

  void Clear();

  /// \brief The process-wide recorder (disabled until enabled).
  static TraceRecorder& Global();

 private:
  const size_t capacity_;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> total_{0};
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;  // capacity_ slots once warmed up
  size_t write_pos_ = 0;
};

/// \brief Monotonic nanosecond clock (steady, process-relative).
int64_t SteadyNowNs();

/// \brief RAII span: times its scope, records into `recorder` when
/// enabled (linking to the enclosing span on this thread), and optionally
/// feeds the measured duration into a latency histogram.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, Histogram* latency = nullptr,
                      TraceRecorder* recorder = &TraceRecorder::Global());
  /// \brief Like above but stamps the recorded span with `tag` (e.g. a
  /// plan-node id) for later correlation.
  ScopedSpan(const char* name, uint64_t tag, Histogram* latency,
             TraceRecorder* recorder = &TraceRecorder::Global());
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// \brief This span's id (0 when tracing is disabled).
  uint64_t id() const { return id_; }

  /// \brief The measured duration so far (ns since construction), or 0
  /// when the span is untimed. Used by the executor to feed per-node
  /// profiles without a second clock read.
  int64_t ElapsedNs() const { return timed_ ? SteadyNowNs() - start_ns_ : 0; }

 private:
  const char* name_;
  Histogram* latency_;
  TraceRecorder* recorder_;
  uint64_t tag_ = 0;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  int64_t start_ns_ = 0;
  bool timed_ = false;
};

}  // namespace obs
}  // namespace expdb

#endif  // EXPDB_OBS_TRACE_H_
