#include "obs/trace.h"

#include <chrono>

namespace expdb {
namespace obs {

namespace {
/// The innermost live span id on this thread (0 = none); links children
/// to parents without any central coordination.
thread_local uint64_t tls_current_span = 0;
}  // namespace

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void TraceRecorder::Record(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[write_pos_] = std::move(record);
  }
  write_pos_ = (write_pos_ + 1) % capacity_;
  total_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SpanRecord> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // write_pos_ is the oldest slot once the ring is full.
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(write_pos_ + i) % capacity_]);
    }
  }
  return out;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  write_pos_ = 0;
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* global = new TraceRecorder();
  return *global;
}

ScopedSpan::ScopedSpan(const char* name, Histogram* latency,
                       TraceRecorder* recorder)
    : ScopedSpan(name, /*tag=*/0, latency, recorder) {}

ScopedSpan::ScopedSpan(const char* name, uint64_t tag, Histogram* latency,
                       TraceRecorder* recorder)
    : name_(name), latency_(latency), recorder_(recorder), tag_(tag) {
  const bool tracing = recorder_ != nullptr && recorder_->enabled();
  timed_ = tracing || latency_ != nullptr;
  if (!timed_) return;
  start_ns_ = SteadyNowNs();
  if (tracing) {
    id_ = recorder_->NextId();
    parent_id_ = tls_current_span;
    tls_current_span = id_;
  }
}

ScopedSpan::~ScopedSpan() {
  if (!timed_) return;
  const int64_t duration = SteadyNowNs() - start_ns_;
  if (latency_ != nullptr) latency_->Record(duration);
  if (id_ != 0) {
    tls_current_span = parent_id_;
    recorder_->Record({id_, parent_id_, name_, start_ns_, duration, tag_});
  }
}

}  // namespace obs
}  // namespace expdb
