#include "obs/trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace expdb {
namespace obs {

namespace {

/// The calling thread's trace position (trace id + innermost live span);
/// links children to parents without any central coordination.
thread_local TraceContext tls_context{};

Counter* DroppedSpansCounter() {
  static Counter* counter = MetricsRegistry::Global().GetCounter(
      "expdb_trace_spans_dropped_total",
      "Trace spans overwritten by ring overflow before export");
  return counter;
}

}  // namespace

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TraceContext CurrentTraceContext() { return tls_context; }

TraceContextScope::TraceContextScope(TraceContext ctx) : saved_(tls_context) {
  tls_context = ctx;
}

TraceContextScope::~TraceContextScope() { tls_context = saved_; }

uint32_t CurrentThreadOrdinal() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void TraceRecorder::Record(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    // Overwriting loses the oldest span: surface the loss instead of
    // discarding it silently.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    DroppedSpansCounter()->Increment();
    ring_[write_pos_] = std::move(record);
  }
  write_pos_ = (write_pos_ + 1) % capacity_;
  total_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SpanRecord> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // write_pos_ is the oldest slot once the ring is full.
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(write_pos_ + i) % capacity_]);
    }
  }
  return out;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  write_pos_ = 0;
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* global = new TraceRecorder();
  return *global;
}

ScopedSpan::ScopedSpan(const char* name, Histogram* latency,
                       TraceRecorder* recorder)
    : ScopedSpan(name, /*tag=*/0, latency, recorder) {}

ScopedSpan::ScopedSpan(const char* name, uint64_t tag, Histogram* latency,
                       TraceRecorder* recorder)
    : name_(name), latency_(latency), recorder_(recorder), tag_(tag) {
  const bool tracing = recorder_ != nullptr && recorder_->enabled();
  timed_ = tracing || latency_ != nullptr;
  if (!timed_) return;
  start_ns_ = SteadyNowNs();
  if (tracing) {
    id_ = recorder_->NextId();
    saved_ = tls_context;
    // Inherit the enclosing trace; a span with no enclosing context is a
    // root and starts a new trace identified by its own span id.
    trace_id_ = saved_.active() ? saved_.trace_id : id_;
    tls_context = TraceContext{trace_id_, id_};
  }
}

ScopedSpan::~ScopedSpan() {
  if (!timed_) return;
  const int64_t duration = SteadyNowNs() - start_ns_;
  if (latency_ != nullptr) latency_->Record(duration);
  if (id_ != 0) {
    tls_context = saved_;
    recorder_->Record({id_, saved_.span_id, trace_id_, name_, start_ns_,
                       duration, tag_, CurrentThreadOrdinal()});
  }
}

std::string ChromeTraceJson(const std::vector<SpanRecord>& spans) {
  // {"displayTimeUnit":"ms","traceEvents":[{...}, ...]}
  // One complete ("ph":"X") event per span; ts/dur in microseconds as
  // the format requires. Span linkage rides in args.
  std::string out =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) out += ",";
    first = false;
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "{\"name\":\"%s\",\"cat\":\"expdb\",\"ph\":\"X\","
        "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u,"
        "\"args\":{\"span_id\":%" PRIu64 ",\"parent_id\":%" PRIu64
        ",\"trace_id\":%" PRIu64 ",\"tag\":%" PRIu64 "}}",
        JsonEscape(s.name).c_str(), static_cast<double>(s.start_ns) / 1000.0,
        static_cast<double>(s.duration_ns) / 1000.0, s.tid, s.id,
        s.parent_id, s.trace_id, s.tag);
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace expdb
