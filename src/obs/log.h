// Structured event log (docs/OBSERVABILITY.md): a thread-safe sink for
// discrete *decisions* the metrics layer cannot express — which view
// maintenance path ran, why a replica re-fetched, what an expiration
// batch removed, which statements ran slow.
//
// Each event carries a severity, a component (the subsystem taxonomy of
// docs/OBSERVABILITY.md), an event name, free-form key/value fields, and
// the emitting thread's current TraceContext — so events join the span
// tree of the request that caused them.
//
// Events are retained in a bounded ring (overwrites are counted, like
// the TraceRecorder's) and optionally appended to a JSONL file sink as
// they are emitted. The disabled path is one relaxed atomic load.

#ifndef EXPDB_OBS_LOG_H_
#define EXPDB_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace expdb {
namespace obs {

enum class LogSeverity { kDebug, kInfo, kWarn, kError };

std::string_view LogSeverityToString(LogSeverity severity);

/// \brief One key/value pair of a structured event. Values are
/// pre-rendered strings (call sites stringify numbers).
using LogField = std::pair<std::string, std::string>;

/// \brief One structured event.
struct LogEvent {
  int64_t ts_ns = 0;  ///< steady-clock, process-relative (SteadyNowNs)
  LogSeverity severity = LogSeverity::kInfo;
  std::string component;  ///< subsystem: sql, view, replica, expiration, ...
  std::string event;      ///< e.g. "slow_query", "delta_apply", "refetch"
  uint64_t trace_id = 0;  ///< emitting thread's trace (0 = untraced)
  uint64_t span_id = 0;   ///< innermost live span at emission (0 = none)
  std::vector<LogField> fields;

  /// \brief One JSONL line (no trailing newline).
  std::string ToJson() const;
};

/// \brief The bounded, thread-safe event sink. Disabled by default.
class EventLog {
 public:
  explicit EventLog(size_t capacity = 1024);
  ~EventLog();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  size_t capacity() const { return capacity_; }

  /// \brief Records one event (no-op when disabled). The emitting
  /// thread's TraceContext is attached automatically. Appends a JSONL
  /// line to the file sink when one is open.
  void Emit(LogSeverity severity, std::string component, std::string event,
            std::vector<LogField> fields = {});

  /// \brief Events currently retained, oldest first.
  std::vector<LogEvent> Snapshot() const;

  /// \brief Retained events rendered as JSONL (one JSON object per line).
  std::string JsonlText() const;

  /// \brief Total events ever emitted (including overwritten ones).
  uint64_t total_emitted() const {
    return total_.load(std::memory_order_relaxed);
  }

  /// \brief Events lost to ring overflow.
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// \brief Sink lines (or the final flush) that failed to reach the
  /// file — disk full, unlinked directory, revoked permissions. Also
  /// counted process-wide in expdb_event_log_write_errors_total and
  /// surfaced by MONITOR STATUS.
  uint64_t write_errors() const {
    return write_errors_.load(std::memory_order_relaxed);
  }

  /// \brief The most recent sink failure (open or write), "" when the
  /// sink has never failed. MONITOR STATUS renders this.
  std::string last_sink_error() const;

  void Clear();

  /// \brief Opens (truncates) a JSONL file sink; subsequent events append
  /// one line each. Returns false (with `error` set) when the path cannot
  /// be opened — the failure is additionally recorded in
  /// last_sink_error() and emitted as a warning event, so callers that
  /// ignore the return value no longer swallow it silently. Does not
  /// toggle enabled().
  bool OpenSink(const std::string& path, std::string* error = nullptr);

  /// \brief Flushes and closes the sink; a failed final flush counts as
  /// a write error.
  void CloseSink();
  bool HasSink() const;

  /// \brief The process-wide event log (disabled until enabled).
  static EventLog& Global();

 private:
  const size_t capacity_;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> write_errors_{0};
  mutable std::mutex mu_;
  std::vector<LogEvent> ring_;  // capacity_ slots once warmed up
  size_t write_pos_ = 0;
  std::ofstream sink_;
  std::string last_sink_error_;  // guarded by mu_
};

}  // namespace obs
}  // namespace expdb

#endif  // EXPDB_OBS_LOG_H_
