#include "obs/timeseries.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace expdb {
namespace obs {

namespace {

/// Renders a double compactly for JSON (no trailing zeros, never NaN/Inf
/// — callers only pass finite values; clamp defensively anyway).
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

double PercentileFromBuckets(const std::vector<int64_t>& bounds,
                             const std::vector<uint64_t>& counts, double p) {
  if (counts.size() != bounds.size() + 1) return 0.0;
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // 1-based rank of the percentile sample, matching Histogram::Percentile.
  uint64_t rank = static_cast<uint64_t>(std::ceil(p / 100.0 *
                                                  static_cast<double>(total)));
  rank = std::clamp<uint64_t>(rank, 1, total);
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] >= rank) {
      if (i == bounds.size()) {
        // Overflow bucket: no finite upper edge; the largest bound is
        // the best (under-)estimate available.
        return bounds.empty() ? 0.0
                              : static_cast<double>(bounds.back());
      }
      const double lo = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      const double hi = static_cast<double>(bounds[i]);
      const double within =
          static_cast<double>(rank - seen) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * within;
    }
    seen += counts[i];
  }
  return bounds.empty() ? 0.0 : static_cast<double>(bounds.back());
}

TimeSeriesStore::TimeSeriesStore(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void TimeSeriesStore::Append(SeriesData* series, TimeSeriesPoint point) {
  if (series->ring.size() < capacity_) {
    series->ring.push_back(point);
  } else {
    series->ring[series->write_pos] = point;
    series->write_pos = (series->write_pos + 1) % capacity_;
  }
}

void TimeSeriesStore::Sample(const std::vector<MetricSnapshot>& snapshot,
                             int64_t t_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  ++samples_;
  for (const MetricSnapshot& m : snapshot) {
    SeriesData& s = series_[m.name];
    s.kind = m.kind;
    TimeSeriesPoint point;
    point.t_ns = t_ns;
    const double window_s =
        s.has_prev && t_ns > s.prev_t_ns
            ? static_cast<double>(t_ns - s.prev_t_ns) / 1e9
            : 0.0;
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter: {
        point.value = m.value;
        if (s.has_prev) {
          // Reset-tolerant: a counter going backwards (ResetAll) restarts
          // the delta from its new cumulative value.
          point.delta = m.value >= s.prev_value ? m.value - s.prev_value
                                                : m.value;
          if (window_s > 0.0) point.rate = point.delta / window_s;
        }
        break;
      }
      case MetricSnapshot::Kind::kGauge: {
        point.value = m.value;
        if (s.has_prev) point.delta = m.value - s.prev_value;
        break;
      }
      case MetricSnapshot::Kind::kHistogram: {
        point.count = m.count;
        // Window = the bucket counts accumulated since the last sample.
        std::vector<uint64_t> window = m.bucket_counts;
        if (s.has_prev && s.prev_buckets.size() == window.size() &&
            m.count >= s.prev_count) {
          for (size_t i = 0; i < window.size(); ++i) {
            window[i] = window[i] >= s.prev_buckets[i]
                            ? window[i] - s.prev_buckets[i]
                            : window[i];
          }
          point.delta = static_cast<double>(m.count - s.prev_count);
        } else {
          point.delta = static_cast<double>(m.count);
        }
        uint64_t window_count = 0;
        for (uint64_t c : window) window_count += c;
        if (window_count > 0) {
          point.p50 = PercentileFromBuckets(m.bucket_bounds, window, 50.0);
          point.p95 = PercentileFromBuckets(m.bucket_bounds, window, 95.0);
          point.p99 = PercentileFromBuckets(m.bucket_bounds, window, 99.0);
        }
        if (window_s > 0.0) point.rate = point.delta / window_s;
        // value = the window mean estimate via p50 when active; keeps the
        // generic "plot `value`" consumer meaningful for histograms too.
        point.value = point.p50;
        s.prev_buckets = m.bucket_counts;
        s.prev_count = m.count;
        break;
      }
    }
    s.prev_value = m.value;
    s.prev_t_ns = t_ns;
    s.has_prev = true;
    Append(&s, point);
  }
}

std::vector<std::string> TimeSeriesStore::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, data] : series_) {
    if (!data.ring.empty()) out.push_back(name);
  }
  return out;
}

std::optional<TimeSeries> TimeSeriesStore::Series(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end() || it->second.ring.empty()) return std::nullopt;
  const SeriesData& s = it->second;
  TimeSeries out;
  out.name = name;
  out.kind = s.kind;
  out.points.reserve(s.ring.size());
  if (s.ring.size() < capacity_) {
    out.points = s.ring;
  } else {
    for (size_t i = 0; i < s.ring.size(); ++i) {
      out.points.push_back(s.ring[(s.write_pos + i) % capacity_]);
    }
  }
  return out;
}

std::string TimeSeriesStore::JsonText(const std::string& name) const {
  std::optional<TimeSeries> series = Series(name);
  if (!series.has_value()) return "";
  std::string kind;
  switch (series->kind) {
    case MetricSnapshot::Kind::kCounter:
      kind = "counter";
      break;
    case MetricSnapshot::Kind::kGauge:
      kind = "gauge";
      break;
    case MetricSnapshot::Kind::kHistogram:
      kind = "histogram";
      break;
  }
  std::string out = "{\"metric\":\"" + JsonEscape(series->name) +
                    "\",\"kind\":\"" + kind + "\",\"points\":[";
  bool first = true;
  for (const TimeSeriesPoint& p : series->points) {
    if (!first) out += ",";
    first = false;
    out += "{\"t_ns\":" + std::to_string(p.t_ns) +
           ",\"value\":" + JsonNumber(p.value) +
           ",\"delta\":" + JsonNumber(p.delta) +
           ",\"rate\":" + JsonNumber(p.rate);
    if (series->kind == MetricSnapshot::Kind::kHistogram) {
      out += ",\"p50\":" + JsonNumber(p.p50) +
             ",\"p95\":" + JsonNumber(p.p95) +
             ",\"p99\":" + JsonNumber(p.p99) +
             ",\"count\":" + std::to_string(p.count);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string TimeSeriesStore::JsonNames() const {
  std::string out = "[";
  bool first = true;
  for (const std::string& name : Names()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\"";
  }
  out += "]";
  return out;
}

uint64_t TimeSeriesStore::samples_taken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

size_t TimeSeriesStore::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

void TimeSeriesStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  series_.clear();
  samples_ = 0;
}

std::string TelemetryStatusText(const MetricsRegistry& registry) {
  std::string out;
  for (const MetricSnapshot& m : registry.Snapshot()) {
    if (m.kind == MetricSnapshot::Kind::kHistogram) {
      if (m.count == 0) continue;
      out += "  " + m.name + ": count " + std::to_string(m.count) +
             ", p50 " + JsonNumber(m.p50) + ", p95 " + JsonNumber(m.p95) +
             ", p99 " + JsonNumber(m.p99) + "\n";
    } else {
      if (m.value == 0.0) continue;
      out += "  " + m.name + " = " + JsonNumber(m.value) + "\n";
    }
  }
  return out;
}

}  // namespace obs
}  // namespace expdb
