// Time-series rings over the metrics registry (docs/OBSERVABILITY.md §9):
// fixed-capacity per-metric histories sampled on a cadence by the
// engine's TelemetryService, so "what is this counter doing *over time*"
// is answerable without an external scraper.
//
// Each sampled metric gets one ring of TimeSeriesPoints. The store
// derives what the raw cumulative snapshot cannot express:
//  * counters   — the per-window delta and the per-second rate,
//  * gauges     — the raw value plus the per-window delta,
//  * histograms — sliding-window p50/p95/p99 computed from the bucket
//    -count deltas between consecutive samples (cumulative percentiles
//    flatten under load shifts; the windowed ones track the current
//    regime).
//
// The store is thread-safe (one mutex; sampling is off any query's hot
// path) and never allocates per point once a ring is warm.

#ifndef EXPDB_OBS_TIMESERIES_H_
#define EXPDB_OBS_TIMESERIES_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace expdb {
namespace obs {

/// \brief One sample of one metric at one instant.
struct TimeSeriesPoint {
  int64_t t_ns = 0;    ///< steady-clock sample time (SteadyNowNs)
  double value = 0.0;  ///< counter: cumulative; gauge: value; histogram: p50
  /// Change since the previous sample. First point: 0 for counters and
  /// gauges; for histograms the whole cumulative history counts as the
  /// first window.
  double delta = 0.0;
  double rate = 0.0;   ///< counters only: delta / window seconds
  // Histograms only: percentiles over the sampling window (bucket-count
  // deltas since the previous sample). 0 when the window saw no samples.
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  uint64_t count = 0;  ///< histograms only: cumulative sample count
};

/// \brief A copy of one metric's retained history, oldest first.
struct TimeSeries {
  std::string name;
  MetricSnapshot::Kind kind = MetricSnapshot::Kind::kCounter;
  std::vector<TimeSeriesPoint> points;
};

/// \brief Estimates the p-th percentile (p in [0, 100]) from a bucket
/// count vector over `bounds` (counts.size() == bounds.size() + 1, the
/// last entry being the overflow bucket) by linear interpolation within
/// the bucket holding the rank. Samples are assumed non-negative (the
/// registry's histograms hold latencies and sizes); overflow-bucket
/// ranks return the largest finite bound. Returns 0.0 when the counts
/// are all zero.
double PercentileFromBuckets(const std::vector<int64_t>& bounds,
                             const std::vector<uint64_t>& counts, double p);

/// \brief Fixed-capacity per-metric sample rings with counter/histogram
/// derivation. Feed it MetricsRegistry::Snapshot() on a cadence.
class TimeSeriesStore {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit TimeSeriesStore(size_t capacity = kDefaultCapacity);

  size_t capacity() const { return capacity_; }

  /// \brief Appends one point per metric in `snapshot`, evicting each
  /// ring's oldest point once it is full. `t_ns` is the sample instant
  /// (steady clock); deltas/rates derive from the previous call.
  void Sample(const std::vector<MetricSnapshot>& snapshot, int64_t t_ns);

  /// \brief Names of every metric with at least one retained point.
  std::vector<std::string> Names() const;

  /// \brief The named metric's history, or nullopt if never sampled.
  std::optional<TimeSeries> Series(const std::string& name) const;

  /// \brief One metric's ring as a JSON object
  /// {"metric":..., "kind":..., "points":[{...}, ...]}; empty string
  /// when the metric was never sampled (caller renders the 404).
  std::string JsonText(const std::string& name) const;

  /// \brief Every sampled metric name as a JSON array of strings.
  std::string JsonNames() const;

  /// \brief Total Sample() calls.
  uint64_t samples_taken() const;

  /// \brief Metrics currently tracked.
  size_t series_count() const;

  void Clear();

 private:
  struct SeriesData {
    MetricSnapshot::Kind kind = MetricSnapshot::Kind::kCounter;
    std::vector<TimeSeriesPoint> ring;  // capacity_ slots once warm
    size_t write_pos = 0;               // next overwrite slot when warm
    // Previous cumulative state, for delta/rate/window derivation.
    bool has_prev = false;
    int64_t prev_t_ns = 0;
    double prev_value = 0.0;
    uint64_t prev_count = 0;
    std::vector<uint64_t> prev_buckets;
  };

  void Append(SeriesData* series, TimeSeriesPoint point);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::map<std::string, SeriesData> series_;  // guarded by mu_
  uint64_t samples_ = 0;                      // guarded by mu_
};

/// \brief Renders every metric with activity (nonzero counters/gauges,
/// nonempty histograms) as "name = value" lines — the registry half of
/// MONITOR STATUS, shared with the repro binaries' --telemetry dump.
std::string TelemetryStatusText(const MetricsRegistry& registry);

}  // namespace obs
}  // namespace expdb

#endif  // EXPDB_OBS_TIMESERIES_H_
