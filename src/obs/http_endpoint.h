// Embedded HTTP observability endpoint (docs/OBSERVABILITY.md §9): a
// minimal, dependency-free HTTP/1.1 server over POSIX sockets so the
// engine's metrics, health verdict, and telemetry rings are reachable
// from *outside* the process (curl, Prometheus, a load balancer's
// health checker).
//
// Deliberately small: one blocking listener thread on 127.0.0.1, one
// connection served at a time, GET only, Connection: close. That is
// exactly enough for a scrape/health-check surface and keeps the
// attack/bug surface commensurate with an embedded database. The
// routing is a caller-supplied handler, so this layer knows nothing
// about the engine — obs sits at the bottom of the dependency stack
// (below even common), hence the error-string API instead of Status.

#ifndef EXPDB_OBS_HTTP_ENDPOINT_H_
#define EXPDB_OBS_HTTP_ENDPOINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace expdb {
namespace obs {

/// \brief One parsed request line. Only what routing needs: the method,
/// the path, and the raw (undecoded) query string.
struct HttpRequest {
  std::string method;  ///< "GET", uppercased
  std::string path;    ///< "/metrics"
  std::string query;   ///< "metric=expdb_sql_statements_total" ("" = none)
};

/// \brief One response. The server adds Content-Length and
/// Connection: close itself.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// \brief Extracts the value of `key` from a query string of
/// k=v&k2=v2 pairs (%XX-decoded); nullopt when absent.
std::optional<std::string> QueryParam(const std::string& query,
                                      const std::string& key);

/// \brief The blocking single-listener server. Start() binds and spawns
/// the thread; Stop() (and the destructor) joins it. Requests and
/// malformed/oversized inputs count into expdb_http_requests_total /
/// expdb_http_errors_total.
class HttpEndpoint {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpEndpoint(Handler handler);
  ~HttpEndpoint();

  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  /// \brief Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port)
  /// and starts the listener thread. Returns the actually bound port,
  /// or -1 with `*error` describing the failure (port in use, no
  /// socket). Idempotent while running: returns the current port.
  int Start(int port, std::string* error = nullptr);

  /// \brief Stops and joins the listener (idempotent). The in-flight
  /// connection, if any, finishes; the listening socket closes. May
  /// take up to one poll timeout (~200ms) to return.
  void Stop();

  bool running() const;

  /// \brief The actually bound port (differs from Start's argument when
  /// 0 was passed); 0 when not running.
  int port() const;

  uint64_t requests_served() const { return requests_.value(); }

 private:
  void Loop(int listen_fd);
  void ServeConnection(int fd);

  Handler handler_;
  mutable std::mutex mu_;
  std::thread thread_;
  bool thread_running_ = false;  // guarded by mu_
  int port_ = 0;                 // guarded by mu_
  std::atomic<bool> stop_{false};

  // Instance counters parented into the process-wide expdb_http_*.
  obs::Counter requests_;
  obs::Counter errors_;
};

/// \brief A minimal blocking HTTP/1.1 GET client for tests and the CI
/// artifact gate (fetch-your-own-endpoint over loopback). `target` is
/// the path plus optional query ("/metrics", "/timeseries?metric=x").
/// Returns nullopt with `*error` set on connect/read failure. Not a
/// general client: no redirects, no chunked encoding; the response is
/// read until EOF (this server closes per response).
std::optional<HttpResponse> HttpGet(const std::string& host, int port,
                                    const std::string& target,
                                    std::string* error = nullptr,
                                    int timeout_ms = 5000);

}  // namespace obs
}  // namespace expdb

#endif  // EXPDB_OBS_HTTP_ENDPOINT_H_
