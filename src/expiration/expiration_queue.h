// ExpirationManager: physical removal of expired tuples (paper Sec. 3.2
// and the companion TR [24] "Efficient Management of Short-Lived Data").
//
// Two removal policies:
//  * kEager — expired tuples are removed (and triggers fired) as soon as
//    the clock passes their expiration time. A priority queue over
//    expiration times makes each advance O(expired · log n).
//  * kLazy  — expired tuples stay physically present but invisible (every
//    read path filters through expτ); physical removal happens in batched
//    compactions, either on demand or when the expired fraction exceeds a
//    configurable threshold. Triggers still fire in expiration order, at
//    compaction time.
//
// The paper: eager removal "is useful when events should be triggered as
// soon as a tuple expires"; lazy removal "provides more optimisation
// opportunities".

#ifndef EXPDB_EXPIRATION_EXPIRATION_QUEUE_H_
#define EXPDB_EXPIRATION_EXPIRATION_QUEUE_H_

#include <cstdint>
#include <mutex>
#include <queue>
#include <string>
#include <vector>

#include "common/result.h"
#include "expiration/calendar_queue.h"
#include "expiration/clock.h"
#include "expiration/trigger.h"
#include "obs/metrics.h"
#include "relational/database.h"

namespace expdb {

/// When expired tuples are physically removed.
enum class RemovalPolicy { kEager, kLazy };

std::string_view RemovalPolicyToString(RemovalPolicy policy);

/// Which index structure tracks pending expirations under eager removal.
enum class ExpirationIndex {
  kBinaryHeap,     ///< std::priority_queue; O(log n) per operation.
  kCalendarQueue,  ///< tick ring + overflow map; O(1) for near entries
                   ///< (the TR [24] style real-time structure).
};

std::string_view ExpirationIndexToString(ExpirationIndex index);

/// Tuning knobs for the manager.
struct ExpirationManagerOptions {
  RemovalPolicy policy = RemovalPolicy::kEager;
  /// Eager only: the pending-expiration index implementation.
  ExpirationIndex index = ExpirationIndex::kBinaryHeap;
  /// kCalendarQueue only: width of the near window in ticks.
  size_t calendar_ring_size = 256;
  /// Lazy only: compact a relation when (expired tuples)/(stored tuples)
  /// exceeds this fraction. <= 0 disables automatic compaction.
  double lazy_compaction_threshold = 0.5;
  /// Lazy only: evaluate the threshold at most once per this many ticks —
  /// the liveness scan is O(n), so checking every tick would forfeit the
  /// batching advantage lazy removal exists for.
  int64_t lazy_check_interval = 16;
};

/// Operational counters (benchmark C4 reports these). Since the obs
/// refactor this is a *thin read view* assembled from the manager's
/// ExpirationMetrics — the metric objects are the single source of truth
/// and also feed the process-wide obs::MetricsRegistry.
struct ExpirationStats {
  uint64_t inserted = 0;           ///< tuples routed through Insert
  uint64_t removed = 0;            ///< tuples physically removed
  uint64_t triggers_fired = 0;     ///< expiration trigger invocations
  uint64_t heap_pushes = 0;        ///< eager priority-queue pushes
  uint64_t heap_pops = 0;          ///< eager priority-queue pops
  uint64_t stale_heap_entries = 0; ///< pops ignored (tuple gone/extended)
  uint64_t compactions = 0;        ///< lazy compaction passes
  uint64_t segments_dropped = 0;   ///< whole storage segments bulk-dropped
};

/// Instance-local metric handles of one ExpirationManager. Every update
/// propagates to the matching process-wide `expdb_expiration_*` metric in
/// obs::MetricsRegistry::Global() (see docs/OBSERVABILITY.md).
struct ExpirationMetrics {
  obs::Counter inserted;
  obs::Counter removed;
  obs::Counter triggers_fired;
  obs::Counter index_pushes;
  obs::Counter index_pops;
  obs::Counter stale_entries;
  obs::Counter compactions;
  obs::Counter segments_dropped;
  obs::Counter calendar_overflow;
  obs::Gauge queue_size;
  obs::Histogram drain_latency;

  ExpirationMetrics();
};

/// \brief Owns a Database and a LogicalClock; routes inserts, advances
/// time, physically removes expired tuples per policy, and fires triggers.
///
/// Thread-safety (engine protocol, docs/CONCURRENCY.md): Insert may be
/// called concurrently from writers that hold the target relation's
/// writer lock — the shared expiration index and the trigger list are
/// guarded internally. AdvanceTo/Advance/Compact mutate arbitrary
/// relations and must run under the engine's exclusive lock (they are
/// not internally serialized against concurrent relation writers).
class ExpirationManager {
 public:
  explicit ExpirationManager(ExpirationManagerOptions options = {});

  Database& db() { return db_; }
  const Database& db() const { return db_; }
  Timestamp Now() const { return clock_.Now(); }
  RemovalPolicy policy() const { return options_.policy; }

  /// \brief Snapshot of the operational counters (thin view over the
  /// instance metrics; see ExpirationMetrics).
  ExpirationStats stats() const {
    return ExpirationStats{
        metrics_.inserted.value(),      metrics_.removed.value(),
        metrics_.triggers_fired.value(), metrics_.index_pushes.value(),
        metrics_.index_pops.value(),    metrics_.stale_entries.value(),
        metrics_.compactions.value(),   metrics_.segments_dropped.value()};
  }

  const ExpirationMetrics& metrics() const { return metrics_; }

  /// \brief Creates a base relation.
  Result<Relation*> CreateRelation(const std::string& name, Schema schema);

  /// \brief Inserts a tuple expiring at `texp` into `relation`.
  Status Insert(const std::string& relation, Tuple tuple, Timestamp texp);

  /// \brief Inserts with a time-to-live relative to the current time.
  Status InsertWithTtl(const std::string& relation, Tuple tuple, int64_t ttl);

  /// \brief Registers a trigger fired for every expired tuple.
  void AddTrigger(ExpirationTrigger trigger);

  /// \brief True when at least one expiration trigger is registered.
  /// Compaction enumerates removed tuples (the slow path) only then;
  /// trigger-free compaction uses Relation::DropExpired, which drops
  /// fully-expired segments in O(1) each without materializing tuples.
  bool HasTriggers() const {
    std::lock_guard<std::mutex> guard(triggers_mu_);
    return !triggers_.empty();
  }

  /// \brief Advances the clock, applying the removal policy.
  Status AdvanceTo(Timestamp t);
  Status Advance(int64_t ticks);

  /// \brief Lazy policy: physically removes all currently expired tuples
  /// (and fires their triggers). No-op under eager (nothing is expired).
  size_t Compact();

  /// \brief Number of entries currently in the eager expiration index
  /// (including stale ones awaiting lazy deletion).
  size_t queue_size() const {
    std::lock_guard<std::mutex> guard(index_mu_);
    return QueueSizeLocked();
  }

 private:
  struct QueueEntry {
    Timestamp texp;
    std::string relation;
    Tuple tuple;
    bool operator>(const QueueEntry& other) const {
      if (texp != other.texp) return texp > other.texp;
      if (relation != other.relation) return relation > other.relation;
      return other.tuple < tuple;
    }
  };

  /// Calendar-queue payload (texp is the key, kept by the queue itself).
  struct CalendarPayload {
    std::string relation;
    Tuple tuple;
  };

  void FireTriggers(const std::string& relation,
                    const std::vector<std::pair<Tuple, Timestamp>>& removed,
                    Timestamp removed_at);
  void DrainEager(Timestamp t);
  void MaybeAutoCompact();
  size_t CompactRelation(const std::string& name, Relation* rel);
  size_t QueueSizeLocked() const {
    return options_.index == ExpirationIndex::kCalendarQueue
               ? calendar_.size()
               : queue_.size();
  }

  ExpirationManagerOptions options_;
  Database db_;
  LogicalClock clock_;
  /// Guards the shared pending-expiration index (queue_/calendar_):
  /// concurrent writers to *different* relations still funnel their
  /// eager-index pushes through one structure. Leaf lock — nothing else
  /// is acquired while held.
  mutable std::mutex index_mu_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue_;
  CalendarQueue<CalendarPayload> calendar_;
  /// Guards trigger registration vs. firing (held across trigger
  /// callbacks; triggers must not call back into the manager).
  mutable std::mutex triggers_mu_;
  std::vector<ExpirationTrigger> triggers_;
  ExpirationMetrics metrics_;
  /// Lazy: next time at which the compaction threshold is evaluated.
  Timestamp next_lazy_check_;
};

}  // namespace expdb

#endif  // EXPDB_EXPIRATION_EXPIRATION_QUEUE_H_
