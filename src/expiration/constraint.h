// Integrity constraints in the presence of expiration (paper Sec. 1:
// expiration integrates with "integrity constraint checking").
//
// Two constraint families:
//  * Row constraints — a predicate every inserted tuple must satisfy;
//    expiration cannot violate them, so they are checked at insert.
//  * Minimum-cardinality constraints — |expτ(R)| >= k; these CAN become
//    violated purely by the passage of time, so they are (re)checked when
//    tuples expire and surface as violation events.

#ifndef EXPDB_EXPIRATION_CONSTRAINT_H_
#define EXPDB_EXPIRATION_CONSTRAINT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/predicate.h"
#include "relational/database.h"

namespace expdb {

/// \brief A reported constraint violation.
struct ConstraintViolation {
  std::string constraint_name;
  std::string relation;
  std::string detail;
};

/// \brief A set of declarative constraints over a database.
class ConstraintSet {
 public:
  /// \brief Every tuple inserted into `relation` must satisfy `predicate`.
  void AddRowConstraint(std::string name, std::string relation,
                        Predicate predicate);

  /// \brief expτ(relation) must always hold at least `min_count` tuples.
  void AddMinCardinality(std::string name, std::string relation,
                         size_t min_count);

  /// \brief Checks row constraints for an insert into `relation`.
  Status CheckInsert(const std::string& relation, const Tuple& tuple) const;

  /// \brief Evaluates all cardinality constraints at time `now`.
  std::vector<ConstraintViolation> CheckCardinalities(const Database& db,
                                                      Timestamp now) const;

  size_t size() const {
    return row_constraints_.size() + cardinality_constraints_.size();
  }

 private:
  struct RowConstraint {
    std::string name;
    std::string relation;
    Predicate predicate;
  };
  struct CardinalityConstraint {
    std::string name;
    std::string relation;
    size_t min_count;
  };

  std::vector<RowConstraint> row_constraints_;
  std::vector<CardinalityConstraint> cardinality_constraints_;
};

}  // namespace expdb

#endif  // EXPDB_EXPIRATION_CONSTRAINT_H_
