#include "expiration/expiration_queue.h"

#include <algorithm>

#include "obs/log.h"
#include "obs/trace.h"

namespace expdb {

ExpirationMetrics::ExpirationMetrics() {
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  inserted.SetParent(r.GetCounter("expdb_expiration_inserted_total"));
  removed.SetParent(r.GetCounter("expdb_expiration_removed_total"));
  triggers_fired.SetParent(
      r.GetCounter("expdb_expiration_triggers_fired_total"));
  index_pushes.SetParent(
      r.GetCounter("expdb_expiration_index_pushes_total"));
  index_pops.SetParent(r.GetCounter("expdb_expiration_index_pops_total"));
  stale_entries.SetParent(
      r.GetCounter("expdb_expiration_stale_entries_total"));
  compactions.SetParent(r.GetCounter("expdb_expiration_compactions_total"));
  segments_dropped.SetParent(r.GetCounter(
      "expdb_segment_dropped_total",
      "Whole storage segments bulk-dropped by expiration compaction"));
  calendar_overflow.SetParent(
      r.GetCounter("expdb_expiration_calendar_overflow_total"));
  queue_size.SetParent(r.GetGauge("expdb_expiration_queue_size"));
  drain_latency.SetParent(
      r.GetHistogram("expdb_expiration_drain_latency_ns"));
}

std::string_view RemovalPolicyToString(RemovalPolicy policy) {
  switch (policy) {
    case RemovalPolicy::kEager:
      return "eager";
    case RemovalPolicy::kLazy:
      return "lazy";
  }
  return "?";
}

std::string_view ExpirationIndexToString(ExpirationIndex index) {
  switch (index) {
    case ExpirationIndex::kBinaryHeap:
      return "binary-heap";
    case ExpirationIndex::kCalendarQueue:
      return "calendar-queue";
  }
  return "?";
}

ExpirationManager::ExpirationManager(ExpirationManagerOptions options)
    : options_(options),
      calendar_(Timestamp::Zero(),
                std::max<size_t>(1, options.calendar_ring_size)) {
  calendar_.set_overflow_counter(&metrics_.calendar_overflow);
}

Result<Relation*> ExpirationManager::CreateRelation(const std::string& name,
                                                    Schema schema) {
  return db_.CreateRelation(name, std::move(schema));
}

Status ExpirationManager::Insert(const std::string& relation, Tuple tuple,
                                 Timestamp texp) {
  if (texp <= clock_.Now()) {
    return Status::InvalidArgument(
        "expiration time " + texp.ToString() +
        " is not in the future (now = " + clock_.Now().ToString() + ")");
  }
  EXPDB_ASSIGN_OR_RETURN(Relation * rel, db_.GetRelation(relation));
  EXPDB_RETURN_NOT_OK(rel->Insert(tuple, texp));
  metrics_.inserted.Increment();
  if (options_.policy == RemovalPolicy::kEager && texp.IsFinite()) {
    std::lock_guard<std::mutex> guard(index_mu_);
    if (options_.index == ExpirationIndex::kCalendarQueue) {
      calendar_.Schedule(texp, {relation, std::move(tuple)});
    } else {
      queue_.push({texp, relation, std::move(tuple)});
    }
    metrics_.index_pushes.Increment();
    metrics_.queue_size.Set(static_cast<int64_t>(QueueSizeLocked()));
  }
  return Status::OK();
}

Status ExpirationManager::InsertWithTtl(const std::string& relation,
                                        Tuple tuple, int64_t ttl) {
  if (ttl <= 0) {
    return Status::InvalidArgument("ttl must be positive, got " +
                                   std::to_string(ttl));
  }
  return Insert(relation, std::move(tuple), clock_.Now() + ttl);
}

void ExpirationManager::AddTrigger(ExpirationTrigger trigger) {
  std::lock_guard<std::mutex> guard(triggers_mu_);
  triggers_.push_back(std::move(trigger));
}

Status ExpirationManager::AdvanceTo(Timestamp t) {
  EXPDB_RETURN_NOT_OK(clock_.AdvanceTo(t));
  if (options_.policy == RemovalPolicy::kEager) {
    DrainEager(t);
  } else {
    MaybeAutoCompact();
  }
  return Status::OK();
}

Status ExpirationManager::Advance(int64_t ticks) {
  if (ticks < 0) {
    return Status::InvalidArgument("cannot advance by negative ticks");
  }
  return AdvanceTo(clock_.Now() + ticks);
}

void ExpirationManager::DrainEager(Timestamp t) {
  obs::ScopedSpan span("expiration.drain", &metrics_.drain_latency);
  // Entries may be stale because the tuple was re-inserted with a later
  // expiration (Relation keeps the max) or explicitly erased; verify
  // against the relation before removing ("lazy deletion" indexing).
  size_t batch_removed = 0;
  size_t batch_stale = 0;
  auto expire_one = [&](Timestamp texp, const std::string& relation,
                        const Tuple& tuple) {
    metrics_.index_pops.Increment();
    auto rel = db_.GetRelation(relation);
    if (!rel.ok()) {
      metrics_.stale_entries.Increment();  // relation dropped
      ++batch_stale;
      return;
    }
    auto current = rel.value()->GetTexp(tuple);
    if (!current.has_value() || *current != texp) {
      metrics_.stale_entries.Increment();  // erased or lifetime extended
      ++batch_stale;
      return;
    }
    rel.value()->Erase(tuple);
    metrics_.removed.Increment();
    ++batch_removed;
    FireTriggers(relation, {{tuple, texp}}, texp);
  };

  {
    std::lock_guard<std::mutex> guard(index_mu_);
    if (options_.index == ExpirationIndex::kCalendarQueue) {
      calendar_.AdvanceTo(t, [&](Timestamp texp, CalendarPayload& payload) {
        expire_one(texp, payload.relation, payload.tuple);
      });
    } else {
      while (!queue_.empty() && queue_.top().texp <= t) {
        QueueEntry entry = queue_.top();
        queue_.pop();
        expire_one(entry.texp, entry.relation, entry.tuple);
      }
    }
    metrics_.queue_size.Set(static_cast<int64_t>(QueueSizeLocked()));
  }
  // One batch event per non-empty drain, not one per tuple: the event
  // log records decisions, not the tuple stream.
  obs::EventLog& log = obs::EventLog::Global();
  if ((batch_removed > 0 || batch_stale > 0) && log.enabled()) {
    log.Emit(obs::LogSeverity::kInfo, "expiration", "drain",
             {{"now", t.ToString()},
              {"removed", std::to_string(batch_removed)},
              {"stale_entries", std::to_string(batch_stale)},
              {"queue_size", std::to_string(queue_size())}});
  }
}

void ExpirationManager::MaybeAutoCompact() {
  if (options_.lazy_compaction_threshold <= 0) return;
  const Timestamp now = clock_.Now();
  if (now < next_lazy_check_) return;
  next_lazy_check_ = now + std::max<int64_t>(1, options_.lazy_check_interval);
  for (const std::string& name : db_.RelationNames()) {
    Relation* rel = db_.GetRelation(name).value();
    if (rel->empty()) continue;
    const size_t live = rel->CountUnexpiredAt(now);
    const double expired_fraction =
        1.0 - static_cast<double>(live) / static_cast<double>(rel->size());
    if (expired_fraction > options_.lazy_compaction_threshold) {
      CompactRelation(name, rel);
    }
  }
}

size_t ExpirationManager::CompactRelation(const std::string& name,
                                          Relation* rel) {
  obs::ScopedSpan span("expiration.compact", &metrics_.drain_latency);
  // Trigger-free fast path: nobody needs the removed tuples, so let the
  // storage layer drop fully-expired segments whole — O(segments), not
  // O(tuples) — instead of enumerating them. With triggers registered the
  // tuples must be materialized in expiration order, the classic path.
  if (!HasTriggers()) {
    const Relation::DropResult drop = rel->DropExpired(clock_.Now());
    if (drop.tuples == 0) return 0;
    metrics_.compactions.Increment();
    metrics_.removed.Increment(drop.tuples);
    metrics_.segments_dropped.Increment(drop.segments);
    obs::EventLog& log = obs::EventLog::Global();
    if (log.enabled()) {
      log.Emit(obs::LogSeverity::kInfo, "expiration", "compact",
               {{"relation", name},
                {"removed", std::to_string(drop.tuples)},
                {"segments_dropped", std::to_string(drop.segments)},
                {"now", clock_.Now().ToString()}});
    }
    return drop.tuples;
  }
  std::vector<std::pair<Tuple, Timestamp>> removed =
      rel->RemoveExpired(clock_.Now());
  if (removed.empty()) return 0;
  metrics_.compactions.Increment();
  metrics_.removed.Increment(removed.size());
  obs::EventLog& log = obs::EventLog::Global();
  if (log.enabled()) {
    log.Emit(obs::LogSeverity::kInfo, "expiration", "compact",
             {{"relation", name},
              {"removed", std::to_string(removed.size())},
              {"now", clock_.Now().ToString()}});
  }
  FireTriggers(name, removed, clock_.Now());
  return removed.size();
}

size_t ExpirationManager::Compact() {
  size_t total = 0;
  for (const std::string& name : db_.RelationNames()) {
    total += CompactRelation(name, db_.GetRelation(name).value());
  }
  return total;
}

void ExpirationManager::FireTriggers(
    const std::string& relation,
    const std::vector<std::pair<Tuple, Timestamp>>& removed,
    Timestamp removed_at) {
  std::lock_guard<std::mutex> guard(triggers_mu_);
  if (triggers_.empty()) return;
  for (const auto& [tuple, texp] : removed) {
    ExpirationEvent event{relation, tuple, texp, removed_at};
    for (const ExpirationTrigger& trigger : triggers_) {
      trigger(event);
      metrics_.triggers_fired.Increment();
    }
  }
}

}  // namespace expdb
