// CalendarQueue: an expiration index with O(1) scheduling for short-lived
// entries (the common case the paper and its companion TR [24], "Efficient
// Management of Short-Lived Data", target) and amortized O(1) expiry.
//
// Structure: a ring of buckets covers the near window (now, now + N]; one
// bucket per tick, so scheduling and expiring near entries is constant
// time. Entries beyond the window live in an ordered overflow map and are
// pulled into the ring as the window slides. Compared to the binary heap
// (see ExpirationManager), the calendar queue trades a small, bounded
// memory overhead for removing the log factor on the hot path.

#ifndef EXPDB_EXPIRATION_CALENDAR_QUEUE_H_
#define EXPDB_EXPIRATION_CALENDAR_QUEUE_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/timestamp.h"
#include "obs/metrics.h"

namespace expdb {

/// \brief A time-indexed queue of payloads with finite expiration times.
///
/// Entries with equal expiration times are delivered in insertion order.
/// Infinite expiration times are rejected by design — a tuple that never
/// expires has no business in an expiration index.
template <typename Payload>
class CalendarQueue {
 public:
  /// \param start the current time; entries must expire strictly later.
  /// \param ring_size width N of the near window, in ticks.
  explicit CalendarQueue(Timestamp start, size_t ring_size = 256)
      : now_(start), ring_(ring_size) {}

  /// \brief Number of scheduled, not-yet-expired entries.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  Timestamp now() const { return now_; }

  /// \brief Observability hook: when set, counts schedules that miss the
  /// near window and land in the O(log n) overflow map — the metric that
  /// tells whether ring_size matches the workload's lifetimes.
  void set_overflow_counter(obs::Counter* counter) {
    overflow_counter_ = counter;
  }

  /// \brief Schedules `payload` to expire at `texp`. Requires a finite
  /// texp strictly in the future (callers keep ∞ tuples out).
  bool Schedule(Timestamp texp, Payload payload) {
    if (!texp.IsFinite() || texp <= now_) return false;
    if (InWindow(texp)) {
      ring_[Slot(texp)].emplace_back(texp, std::move(payload));
    } else {
      overflow_[texp].push_back(std::move(payload));
      if (overflow_counter_ != nullptr) overflow_counter_->Increment();
    }
    ++size_;
    return true;
  }

  /// \brief Advances to time `t`, invoking `fn(texp, payload)` for every
  /// entry with texp <= t, grouped by increasing texp.
  void AdvanceTo(Timestamp t,
                 const std::function<void(Timestamp, Payload&)>& fn) {
    if (t <= now_) return;
    const size_t n = ring_.size();
    // Visit at most one full ring revolution: beyond that, every bucket
    // has been seen once and the rest of the jump only concerns the
    // overflow map.
    Timestamp tick = now_;
    for (size_t steps = 0; steps < n && tick < t; ++steps) {
      tick = tick.Next();
      auto& bucket = ring_[Slot(tick)];
      // Ring invariant: every entry in this bucket expires exactly at
      // `tick` (buckets are one tick wide and the window is one ring
      // long), so the whole bucket is due.
      for (auto& [texp, payload] : bucket) {
        fn(texp, payload);
        --size_;
      }
      bucket.clear();
      now_ = tick;
      SlideWindow();
    }
    if (tick < t) {
      // The jump outran the per-tick walk. Anything still due lives
      // either in ring buckets the walk did not reach (including entries
      // SlideWindow pulled in along the way) or in the overflow map;
      // collect both and deliver in expiration order.
      std::vector<std::pair<Timestamp, Payload>> due;
      for (auto& bucket : ring_) {
        auto keep = bucket.begin();
        for (auto& entry : bucket) {
          if (entry.first <= t) {
            due.push_back(std::move(entry));
          } else {
            *keep++ = std::move(entry);
          }
        }
        bucket.erase(keep, bucket.end());
      }
      auto end = overflow_.upper_bound(t);
      for (auto it = overflow_.begin(); it != end; ++it) {
        for (Payload& payload : it->second) {
          due.emplace_back(it->first, std::move(payload));
        }
      }
      overflow_.erase(overflow_.begin(), end);
      std::stable_sort(due.begin(), due.end(),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       });
      for (auto& [texp, payload] : due) {
        fn(texp, payload);
        --size_;
      }
      now_ = t;
      SlideWindow();
    }
  }

  /// \brief The earliest scheduled expiration, if any.
  std::optional<Timestamp> NextExpiration() const {
    std::optional<Timestamp> best;
    for (const auto& bucket : ring_) {
      for (const auto& [texp, payload] : bucket) {
        if (!best || texp < *best) best = texp;
      }
    }
    if (!overflow_.empty()) {
      Timestamp first = overflow_.begin()->first;
      if (!best || first < *best) best = first;
    }
    return best;
  }

 private:
  bool InWindow(Timestamp texp) const {
    return texp <= now_ + static_cast<int64_t>(ring_.size());
  }

  size_t Slot(Timestamp texp) const {
    return static_cast<size_t>(texp.ticks()) % ring_.size();
  }

  /// Pulls overflow entries that the slid window now covers into the ring.
  void SlideWindow() {
    const Timestamp window_end = now_ + static_cast<int64_t>(ring_.size());
    auto end = overflow_.upper_bound(window_end);
    for (auto it = overflow_.begin(); it != end; ++it) {
      auto& bucket = ring_[Slot(it->first)];
      for (Payload& payload : it->second) {
        bucket.emplace_back(it->first, std::move(payload));
      }
    }
    overflow_.erase(overflow_.begin(), end);
  }

  Timestamp now_;
  std::vector<std::vector<std::pair<Timestamp, Payload>>> ring_;
  std::map<Timestamp, std::vector<Payload>> overflow_;
  size_t size_ = 0;
  obs::Counter* overflow_counter_ = nullptr;
};

}  // namespace expdb

#endif  // EXPDB_EXPIRATION_CALENDAR_QUEUE_H_
