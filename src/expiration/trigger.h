// Expiration triggers (paper Sec. 1: "triggers can be supported that fire
// on expirations, as can integrity constraint checking").

#ifndef EXPDB_EXPIRATION_TRIGGER_H_
#define EXPDB_EXPIRATION_TRIGGER_H_

#include <functional>
#include <string>

#include "common/timestamp.h"
#include "relational/tuple.h"

namespace expdb {

/// \brief An expiration event: `tuple` of relation `relation` ceased to be
/// current at time `texp` and was physically removed at `removed_at`
/// (equal to texp under eager removal; possibly later under lazy removal).
struct ExpirationEvent {
  std::string relation;
  Tuple tuple;
  Timestamp texp;
  Timestamp removed_at;
};

/// \brief Callback fired once per expired tuple, in (texp, tuple) order.
using ExpirationTrigger = std::function<void(const ExpirationEvent&)>;

}  // namespace expdb

#endif  // EXPDB_EXPIRATION_TRIGGER_H_
