// LogicalClock: the discrete time source driving expiration.
//
// ExpDB separates logical time from wall-clock time: examples and tests
// advance time explicitly (as the paper's figures do: "at time 0", "at
// time 5"), while deployments may map ticks to wall-clock seconds.

#ifndef EXPDB_EXPIRATION_CLOCK_H_
#define EXPDB_EXPIRATION_CLOCK_H_

#include "common/result.h"
#include "common/timestamp.h"

namespace expdb {

/// \brief A monotonically advancing logical clock.
class LogicalClock {
 public:
  LogicalClock() = default;
  explicit LogicalClock(Timestamp start) : now_(start) {}

  Timestamp Now() const { return now_; }

  /// \brief Advances by `ticks` (>= 0).
  Status Advance(int64_t ticks);

  /// \brief Moves to absolute time `t`; time never flows backwards.
  Status AdvanceTo(Timestamp t);

 private:
  Timestamp now_ = Timestamp::Zero();
};

}  // namespace expdb

#endif  // EXPDB_EXPIRATION_CLOCK_H_
