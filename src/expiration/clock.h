// LogicalClock: the discrete time source driving expiration.
//
// ExpDB separates logical time from wall-clock time: examples and tests
// advance time explicitly (as the paper's figures do: "at time 0", "at
// time 5"), while deployments may map ticks to wall-clock seconds.

#ifndef EXPDB_EXPIRATION_CLOCK_H_
#define EXPDB_EXPIRATION_CLOCK_H_

#include <atomic>
#include <cstdint>

#include "common/result.h"
#include "common/timestamp.h"

namespace expdb {

/// \brief A monotonically advancing logical clock.
///
/// Thread-safety: Now() is a single atomic load and may be called from
/// any thread (sessions read the clock while other sessions execute).
/// Advance/AdvanceTo publish with a release store; callers serialize
/// advancing externally (the engine advances time under its exclusive
/// lock — see docs/CONCURRENCY.md).
class LogicalClock {
 public:
  LogicalClock() = default;
  explicit LogicalClock(Timestamp start) : ticks_(start.ticks()) {}

  Timestamp Now() const {
    return Timestamp(ticks_.load(std::memory_order_acquire));
  }

  /// \brief Advances by `ticks` (>= 0).
  Status Advance(int64_t ticks);

  /// \brief Moves to absolute time `t`; time never flows backwards.
  Status AdvanceTo(Timestamp t);

 private:
  std::atomic<int64_t> ticks_{0};
};

}  // namespace expdb

#endif  // EXPDB_EXPIRATION_CLOCK_H_
