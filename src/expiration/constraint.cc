#include "expiration/constraint.h"

namespace expdb {

void ConstraintSet::AddRowConstraint(std::string name, std::string relation,
                                     Predicate predicate) {
  row_constraints_.push_back(
      {std::move(name), std::move(relation), std::move(predicate)});
}

void ConstraintSet::AddMinCardinality(std::string name, std::string relation,
                                      size_t min_count) {
  cardinality_constraints_.push_back(
      {std::move(name), std::move(relation), min_count});
}

Status ConstraintSet::CheckInsert(const std::string& relation,
                                  const Tuple& tuple) const {
  for (const RowConstraint& c : row_constraints_) {
    if (c.relation != relation) continue;
    if (!c.predicate.Evaluate(tuple)) {
      return Status::ConstraintViolation(
          "constraint '" + c.name + "' rejects " + tuple.ToString() +
          " (requires " + c.predicate.ToString() + ")");
    }
  }
  return Status::OK();
}

std::vector<ConstraintViolation> ConstraintSet::CheckCardinalities(
    const Database& db, Timestamp now) const {
  std::vector<ConstraintViolation> out;
  for (const CardinalityConstraint& c : cardinality_constraints_) {
    auto rel = db.GetRelation(c.relation);
    if (!rel.ok()) {
      out.push_back({c.name, c.relation, "relation does not exist"});
      continue;
    }
    const size_t live = rel.value()->CountUnexpiredAt(now);
    if (live < c.min_count) {
      out.push_back({c.name, c.relation,
                     "holds " + std::to_string(live) + " live tuples at " +
                         now.ToString() + ", requires " +
                         std::to_string(c.min_count)});
    }
  }
  return out;
}

}  // namespace expdb
