#include "expiration/clock.h"

namespace expdb {

Status LogicalClock::Advance(int64_t ticks) {
  if (ticks < 0) {
    return Status::InvalidArgument("clock cannot advance by negative " +
                                   std::to_string(ticks));
  }
  now_ += ticks;
  return Status::OK();
}

Status LogicalClock::AdvanceTo(Timestamp t) {
  if (t < now_) {
    return Status::InvalidArgument("clock cannot move backwards from " +
                                   now_.ToString() + " to " + t.ToString());
  }
  if (t.IsInfinite()) {
    return Status::InvalidArgument("clock cannot advance to infinity");
  }
  now_ = t;
  return Status::OK();
}

}  // namespace expdb
