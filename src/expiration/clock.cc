#include "expiration/clock.h"

namespace expdb {

Status LogicalClock::Advance(int64_t ticks) {
  if (ticks < 0) {
    return Status::InvalidArgument("clock cannot advance by negative " +
                                   std::to_string(ticks));
  }
  return AdvanceTo(Now() + ticks);
}

Status LogicalClock::AdvanceTo(Timestamp t) {
  const Timestamp now = Now();
  if (t < now) {
    return Status::InvalidArgument("clock cannot move backwards from " +
                                   now.ToString() + " to " + t.ToString());
  }
  if (t.IsInfinite()) {
    return Status::InvalidArgument("clock cannot advance to infinity");
  }
  ticks_.store(t.ticks(), std::memory_order_release);
  return Status::OK();
}

}  // namespace expdb
